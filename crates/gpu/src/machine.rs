//! The Fermi-class SM timing model: in-order warps over a scoreboard.
//!
//! §5.1 equates one dMT-CGRA core with one NVIDIA SM: "in an Nvidia SM,
//! that logic assembles 32 CUDA cores". This model captures the mechanisms
//! the paper's comparison turns on:
//!
//! * **32-wide SIMT issue** — at most one warp-instruction issues per
//!   cycle, so peak throughput is 32 lanes vs the fabric's 140 units;
//! * **register-file traffic** — every operand is a register read, every
//!   result a write (charged by the energy model);
//! * **scoreboarded memory latency** — loads complete through the same
//!   L1/L2/DRAM hierarchy, with per-warp address coalescing;
//! * **shared-memory banking** — per-lane scratchpad accesses serialize on
//!   bank conflicts;
//! * **barrier synchronization** — `__syncthreads()` blocks every warp in
//!   the block until the slowest arrives (and its memory settles).
//!
//! The L1 uses Fermi's write-through / write-no-allocate policy (§5.1).

use crate::lower::{lower, GpuInstr, GpuProgram, IssueClass};
use dmt_common::config::{SystemConfig, WritePolicy};
use dmt_common::ids::{Addr, NodeId, ThreadId};
use dmt_common::memimg::MemImage;
use dmt_common::stats::{PhaseStats, RunStats};
use dmt_common::value::Word;
use dmt_common::{Error, Result, RunLimits};
use dmt_dfg::kernel::LaunchInput;
use dmt_dfg::node::{eval_pure, MemSpace, NodeKind};
use dmt_dfg::{Dfg, Kernel};
use dmt_mem::{AccessOutcome, MemSystem, Scratchpad};
use dmt_obs::{CycleSample, Obs};

/// Result of a GPU run: final memory image plus statistics.
#[derive(Debug, Clone)]
pub struct GpuRunResult {
    /// Final global-memory image.
    pub memory: MemImage,
    /// Event counters and total cycles.
    pub stats: RunStats,
}

/// The SIMT baseline machine.
#[derive(Debug, Clone)]
pub struct GpuMachine {
    cfg: SystemConfig,
}

impl GpuMachine {
    /// Creates a machine with the given configuration.
    #[must_use]
    pub fn new(cfg: SystemConfig) -> GpuMachine {
        GpuMachine { cfg }
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Lowers and executes `kernel`, running grid blocks sequentially on
    /// one SM (matching the fabric backends' per-core methodology).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Compile`] for kernels using inter-thread
    /// communication and [`Error::Runtime`] for parameter/address errors.
    pub fn run(&self, kernel: &Kernel, input: LaunchInput) -> Result<GpuRunResult> {
        self.run_observed(kernel, input, &mut Obs::disabled())
    }

    /// [`GpuMachine::run`] with an observation handle. The SIMT model is
    /// wave-scheduled, so observation is wave-granular: each wave of
    /// resident blocks is reported as one span with a counter sample at
    /// its boundary (the fabric engines report true per-phase spans and
    /// in-loop samples). A disabled handle costs nothing.
    ///
    /// # Errors
    ///
    /// As [`GpuMachine::run`].
    pub fn run_observed(
        &self,
        kernel: &Kernel,
        input: LaunchInput,
        obs: &mut Obs,
    ) -> Result<GpuRunResult> {
        self.run_limited(kernel, input, obs, &RunLimits::unlimited())
    }

    /// [`GpuMachine::run_observed`] under cooperative [`RunLimits`]:
    /// the issue loop checks the deadline and cancellation token every
    /// cycle (`now` carries across waves, so the budget bounds the
    /// whole launch). The unlimited check is one compare per cycle.
    ///
    /// # Errors
    ///
    /// As [`GpuMachine::run`], plus [`Error::TimedOut`] /
    /// [`Error::Cancelled`] when a limit trips.
    pub fn run_limited(
        &self,
        kernel: &Kernel,
        input: LaunchInput,
        obs: &mut Obs,
        limits: &RunLimits<'_>,
    ) -> Result<GpuRunResult> {
        let program = lower(kernel)?;
        if input.params.len() != kernel.param_names().len() {
            return Err(Error::Runtime(format!(
                "kernel {} expects {} parameters, got {}",
                kernel.name(),
                kernel.param_names().len(),
                input.params.len()
            )));
        }
        let mut global = input.memory;
        let mut stats = RunStats::default();
        // Fermi L1: write-through, write-no-allocate (§5.1).
        let mut mem = MemSystem::new(&self.cfg.mem, WritePolicy::WriteThroughNoAllocate);
        let mut scratch = Scratchpad::new(self.cfg.mem.scratchpad);
        let mut now = 0u64;
        // Concurrent resident blocks, limited by warp slots and scratchpad
        // capacity (Fermi runs several blocks per SM; their warps hide each
        // other's barrier and memory stalls).
        let warps_per_block = kernel
            .threads_per_block()
            .div_ceil(self.cfg.gpu.warp_width)
            .max(1);
        let by_warps = (self.cfg.gpu.max_warps / warps_per_block).max(1);
        let by_shared = if kernel.shared_words() == 0 {
            u32::MAX
        } else {
            ((self.cfg.mem.scratchpad.size_bytes / 4) as u32 / kernel.shared_words()).max(1)
        };
        let wave = by_warps.min(by_shared).min(kernel.grid_blocks());
        // Phase attribution: blocks of one wave pass their barriers
        // independently, so the per-phase split follows the *frontier* —
        // the lowest phase any unfinished warp is still in. Counters are
        // snapshotted whenever the frontier advances (and at each wave
        // end), and each delta is credited to the phase that just drained;
        // work a leading block already did in the next phase rides along
        // with the frontier phase. The split is therefore frontier-exact,
        // while the per-counter sums equal the totals exactly by
        // construction (single-phase kernels report one phase == totals).
        let phase_count = kernel.phases().len().max(1);
        let mut per_phase = vec![PhaseStats::default(); phase_count];
        let mut prev = PhaseStats::default();
        let mut first = 0u32;
        let mut wave_ix = 0u32;
        while first < kernel.grid_blocks() {
            let last = (first + wave).min(kernel.grid_blocks());
            obs.phase_begin(wave_ix, now);
            let mut exec =
                WaveExec::new(&self.cfg, kernel, &program, first..last, &input.params, now);
            now = exec.run(
                &mut global,
                &mut mem,
                &mut scratch,
                &mut stats,
                &mut per_phase,
                &mut prev,
                limits,
            )?;
            // Wave tail (including the final memory settle): the last
            // phase's share of this wave.
            let cum = cumulative_snapshot(&stats, now, &mem, &scratch);
            per_phase[phase_count - 1].accumulate(&cum.minus(&prev));
            prev = cum;
            first = last;
            if obs.on() {
                let threads = u64::from(last) * u64::from(kernel.threads_per_block());
                let (l1_fills, l2_fills) = mem.fill_counts();
                obs.sample(CycleSample {
                    cycle: now,
                    injected: threads,
                    retired: threads,
                    l1_fills,
                    l2_fills,
                    ..Default::default()
                });
            }
            obs.phase_end(now);
            wave_ix += 1;
        }
        obs.finish(now);
        // Each phase executed once architecturally (waves re-run the same
        // configuration); the totals' phase count is the kernel's.
        for p in &mut per_phase {
            p.phases = 1;
        }
        Ok(GpuRunResult {
            memory: global,
            stats: RunStats::from_phases(per_phase),
        })
    }
}

/// The run's cumulative counters at one instant: everything accumulated
/// in `stats`, plus the live state exported only at boundaries (cycles,
/// bank conflicts, hierarchy counters). Differencing consecutive
/// snapshots yields the per-phase shares; the final snapshot is
/// bit-identical to the totals the pre-phase-resolved engine reported.
fn cumulative_snapshot(
    stats: &RunStats,
    now: u64,
    mem: &MemSystem,
    scratch: &Scratchpad,
) -> PhaseStats {
    let mut cum = stats.totals();
    cum.cycles = now;
    cum.shared_bank_conflicts = scratch.bank_conflicts;
    mem.export_phase(&mut cum);
    cum
}

/// Per-warp execution state.
#[derive(Debug, Clone)]
struct Warp {
    /// Resident-block slot this warp belongs to.
    slot: usize,
    /// First linear thread id in the warp (within its block).
    base_tid: u32,
    /// Active lanes (the last warp of an odd-sized block is partial).
    lanes: u32,
    /// Next instruction index in the flattened stream.
    pc: usize,
    /// Earliest cycle the warp may issue again.
    ready_at: u64,
    /// Per-register (= per dataflow node) operand-ready cycles for the
    /// current phase.
    reg_ready: Vec<u64>,
    /// Latest memory completion issued by this warp (barriers wait on it).
    mem_settle: u64,
    /// Waiting at a barrier.
    at_barrier: bool,
}

/// One resident thread block (an SM keeps several in flight, §5.1:
/// "the amount of logic in an SM" includes the multi-block scheduler).
#[derive(Debug)]
struct BlockSlot {
    /// Grid-wide block index.
    block: u32,
    /// Register values for the current phase: `values[node][thread]`.
    values: Vec<Vec<Word>>,
    /// The block's shared-memory image.
    shared: MemImage,
    /// Current phase index.
    phase: usize,
}

/// Executes one *wave* of concurrently resident blocks; waves run
/// back-to-back until the grid is exhausted. Within a wave the scheduler
/// round-robins over every resident warp, so one block's barrier stall is
/// hidden by other blocks — just like a real SM.
struct WaveExec<'a> {
    cfg: &'a SystemConfig,
    kernel: &'a Kernel,
    params: &'a [Word],
    /// Flattened instruction stream: (phase index, instruction).
    stream: Vec<(usize, GpuInstr)>,
    warps: Vec<Warp>,
    slots: Vec<BlockSlot>,
    now: u64,
    rr: usize,
    /// Lowest phase any unfinished warp is still in — the boundary the
    /// per-phase statistics split on (see `GpuMachine::run`).
    frontier: usize,
    /// Phases in the kernel (frontier tracking is skipped when 1).
    phase_count: usize,
    /// Reused per-instruction coalescing buffer (line indices); a member
    /// so the issue hot path never allocates.
    scratch_lines: Vec<u64>,
    /// Reused per-instruction lane-result buffer, ditto.
    scratch_vals: Vec<Word>,
}

impl<'a> WaveExec<'a> {
    fn new(
        cfg: &'a SystemConfig,
        kernel: &'a Kernel,
        program: &'a GpuProgram,
        blocks: std::ops::Range<u32>,
        params: &'a [Word],
        start: u64,
    ) -> WaveExec<'a> {
        let mut stream = Vec::new();
        for (pi, phase) in program.phases.iter().enumerate() {
            if pi > 0 {
                stream.push((pi - 1, GpuInstr::Barrier));
            }
            stream.extend(phase.iter().map(|&i| (pi, i)));
        }
        let threads = kernel.threads_per_block();
        let width = cfg.gpu.warp_width;
        let n_warps = threads.div_ceil(width);
        let mut warps = Vec::new();
        let mut slots = Vec::new();
        for (si, block) in blocks.enumerate() {
            slots.push(BlockSlot {
                block,
                values: Vec::new(),
                shared: MemImage::with_words(kernel.shared_words() as usize),
                phase: 0,
            });
            for w in 0..n_warps {
                warps.push(Warp {
                    slot: si,
                    base_tid: w * width,
                    lanes: width.min(threads - w * width),
                    pc: 0,
                    ready_at: start,
                    reg_ready: Vec::new(),
                    mem_settle: start,
                    at_barrier: false,
                });
            }
        }
        WaveExec {
            cfg,
            kernel,
            params,
            stream,
            warps,
            slots,
            now: start,
            rr: 0,
            frontier: 0,
            phase_count: program.phases.len().max(1),
            scratch_lines: Vec::with_capacity(width as usize),
            scratch_vals: Vec::with_capacity(width as usize),
        }
    }

    /// The lowest phase an unfinished warp is still executing (a warp
    /// parked at the barrier closing phase `p` is still in `p`); `None`
    /// when every warp has retired.
    fn min_unfinished_phase(&self, end: usize) -> Option<usize> {
        self.warps
            .iter()
            .filter(|w| w.pc < end)
            .map(|w| self.stream[w.pc].0)
            .min()
    }

    /// Materializes source registers for `slot`'s current phase
    /// (threadIdx, constants, parameters — special registers and
    /// immediates on a real SM, so no instructions).
    fn enter_phase(&mut self, si: usize) {
        let graph = &self.kernel.phases()[self.slots[si].phase];
        let threads = self.kernel.threads_per_block() as usize;
        let block = self.slots[si].block;
        let mut values = vec![vec![Word::ZERO; threads]; graph.len()];
        for id in graph.node_ids() {
            let kind = graph.kind(id);
            if !kind.is_source() {
                continue;
            }
            for (t, v) in values[id.index()].iter_mut().enumerate() {
                *v = match *kind {
                    NodeKind::Const(w) => w,
                    NodeKind::ThreadIdx(d) => {
                        Word::from_u32(self.kernel.block().coord(ThreadId(t as u32), d))
                    }
                    NodeKind::BlockIdx => Word::from_u32(block),
                    NodeKind::Param(slot) => self.params[usize::from(slot)],
                    _ => unreachable!(),
                };
            }
        }
        self.slots[si].values = values;
        let at = self.now;
        for w in &mut self.warps {
            if w.slot == si {
                w.reg_ready = vec![at; graph.len()];
            }
        }
    }

    fn operands_ready(&self, warp: &Warp, graph: &Dfg, node: NodeId) -> u64 {
        graph
            .inputs(node)
            .iter()
            .flatten()
            .map(|src| warp.reg_ready[src.index()])
            .max()
            .unwrap_or(self.now)
    }

    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        wi: usize,
        phase_ix: usize,
        instr: GpuInstr,
        global: &mut MemImage,
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        stats: &mut RunStats,
    ) -> Result<bool> {
        let graph = &self.kernel.phases()[phase_ix];
        let GpuInstr::Op { node, class } = instr else {
            unreachable!("barriers handled by the scheduler");
        };
        let si = self.warps[wi].slot;
        let lanes = u64::from(self.warps[wi].lanes);
        let g = self.cfg.gpu;
        let n_srcs = graph.inputs(node).iter().flatten().count() as u64;

        let (done_at, issue_busy) = match class {
            IssueClass::Alu => (self.now + g.alu_latency, g.issue_latency),
            IssueClass::Fpu => (self.now + g.fpu_latency, g.issue_latency),
            IssueClass::Sfu => (
                self.now + g.sfu_latency,
                u64::from(g.warp_width / g.sfu_lanes),
            ),
            IssueClass::LoadGlobal | IssueClass::StoreGlobal => {
                let is_store = matches!(class, IssueClass::StoreGlobal);
                // Coalesce per-lane addresses into unique line transactions
                // (buffer reused across instructions — no allocation here).
                let warp = &self.warps[wi];
                let line = self.cfg.mem.l1.line_bytes;
                let addr_node = graph.inputs(node)[0].expect("wired");
                let mut lines = std::mem::take(&mut self.scratch_lines);
                lines.clear();
                lines.extend((0..warp.lanes).map(|l| {
                    let t = (warp.base_tid + l) as usize;
                    u64::from(self.slots[si].values[addr_node.index()][t].as_u32()) / line
                }));
                lines.sort_unstable();
                lines.dedup();
                let mut worst = self.now;
                let mut stalled = false;
                for &ln in &lines {
                    let addr = Addr(ln * line);
                    let outcome = if is_store {
                        mem.store(addr, self.now + g.issue_latency)
                    } else {
                        mem.load(addr, self.now + g.issue_latency)
                    };
                    match outcome {
                        AccessOutcome::Done(t) => worst = worst.max(t),
                        // Replay the whole instruction next cycle; partial
                        // bookings model the bandwidth cost of replays.
                        AccessOutcome::StallMshrFull => {
                            stalled = true;
                            break;
                        }
                    }
                }
                let n_lines = lines.len() as u64;
                self.scratch_lines = lines;
                if stalled {
                    return Ok(false);
                }
                if is_store {
                    stats.global_stores += n_lines;
                    // Stores are fire-and-forget on the SM too.
                    worst = self.now + g.issue_latency;
                } else {
                    stats.global_loads += n_lines;
                }
                self.do_memory(phase_ix, node, wi, is_store, MemSpace::Global, global)?;
                (worst, g.issue_latency)
            }
            IssueClass::LoadShared | IssueClass::StoreShared => {
                let is_store = matches!(class, IssueClass::StoreShared);
                let warp = &self.warps[wi];
                let addr_node = graph.inputs(node)[0].expect("wired");
                let mut worst = self.now;
                for l in 0..warp.lanes {
                    let t = (warp.base_tid + l) as usize;
                    let a = u64::from(self.slots[si].values[addr_node.index()][t].as_u32());
                    let done = scratch.access(Addr(a), self.now + g.issue_latency);
                    worst = worst.max(done);
                }
                if is_store {
                    stats.shared_stores += lanes;
                } else {
                    stats.shared_loads += lanes;
                }
                self.do_memory(phase_ix, node, wi, is_store, MemSpace::Shared, global)?;
                (worst, g.issue_latency)
            }
        };

        // Functional result for compute classes. Operands fit a fixed
        // array (arity ≤ 3) and lane results go through the reused member
        // buffer, so the per-lane evaluation allocates nothing.
        if matches!(class, IssueClass::Alu | IssueClass::Fpu | IssueClass::Sfu) {
            let warp = &self.warps[wi];
            let mut vals = std::mem::take(&mut self.scratch_vals);
            vals.clear();
            vals.extend((0..warp.lanes).map(|l| {
                let t = (warp.base_tid + l) as usize;
                let mut ops = [Word::ZERO; 3];
                let mut n = 0;
                for src in graph.inputs(node).iter().flatten() {
                    ops[n] = self.slots[si].values[src.index()][t];
                    n += 1;
                }
                eval_pure(graph.kind(node), &ops[..n])
            }));
            let base = self.warps[wi].base_tid as usize;
            for (l, &v) in vals.iter().enumerate() {
                self.slots[si].values[node.index()][base + l] = v;
            }
            self.scratch_vals = vals;
        }

        stats.gpu_instructions += 1;
        stats.gpu_thread_instructions += lanes;
        stats.register_reads += n_srcs * lanes;
        stats.register_writes += lanes;

        let warp = &mut self.warps[wi];
        warp.reg_ready[node.index()] = done_at;
        if matches!(
            class,
            IssueClass::LoadGlobal
                | IssueClass::StoreGlobal
                | IssueClass::LoadShared
                | IssueClass::StoreShared
        ) {
            warp.mem_settle = warp.mem_settle.max(done_at);
        }
        warp.pc += 1;
        warp.ready_at = self.now + issue_busy.max(1);
        Ok(true)
    }

    /// Functional memory effect for every lane (timing handled by caller).
    fn do_memory(
        &mut self,
        phase_ix: usize,
        node: NodeId,
        wi: usize,
        is_store: bool,
        space: MemSpace,
        global: &mut MemImage,
    ) -> Result<()> {
        let graph = &self.kernel.phases()[phase_ix];
        let si = self.warps[wi].slot;
        let (base, lanes) = (self.warps[wi].base_tid, self.warps[wi].lanes);
        let addr_node = graph.inputs(node)[0].expect("wired");
        for l in 0..lanes {
            let t = (base + l) as usize;
            let addr = Addr(u64::from(
                self.slots[si].values[addr_node.index()][t].as_u32(),
            ));
            if is_store {
                let val_node = graph.inputs(node)[1].expect("wired");
                let v = self.slots[si].values[val_node.index()][t];
                match space {
                    MemSpace::Global => global.try_store(addr, v)?,
                    MemSpace::Shared => self.slots[si].shared.try_store(addr, v)?,
                }
                self.slots[si].values[node.index()][t] = Word::ZERO; // ordering token
            } else {
                let v = match space {
                    MemSpace::Global => global.try_load(addr)?,
                    MemSpace::Shared => self.slots[si].shared.try_load(addr)?,
                };
                self.slots[si].values[node.index()][t] = v;
            }
        }
        Ok(())
    }

    /// Releases any block whose unfinished warps are all parked at the
    /// barrier with their memory settled; moves the block to its next
    /// phase. Returns whether any warp was released (the only event that
    /// can advance the phase frontier).
    fn release_barriers(&mut self, end: usize, stats: &mut RunStats) -> bool {
        let mut released = false;
        for si in 0..self.slots.len() {
            // Pass 1 (runs every cycle — no allocation): is every
            // unfinished warp of this block parked at the barrier, and
            // when does the slowest one's memory settle?
            let mut any_unfinished = false;
            let mut all_parked = true;
            let mut release = self.now;
            for w in &self.warps {
                if w.slot != si || w.pc >= end {
                    continue;
                }
                any_unfinished = true;
                if !w.at_barrier {
                    all_parked = false;
                    break;
                }
                release = release.max(w.mem_settle);
            }
            if !any_unfinished || !all_parked {
                continue;
            }
            // Pass 2: release them (rare — once per barrier per block).
            let mut first_released_pc = usize::MAX;
            for w in &mut self.warps {
                if w.slot != si || w.pc >= end {
                    continue;
                }
                w.at_barrier = false;
                stats.barrier_wait_cycles += release.saturating_sub(w.ready_at);
                w.pc += 1;
                w.ready_at = release + 1;
                stats.barriers += 1;
                released = true;
                if first_released_pc == usize::MAX {
                    first_released_pc = w.pc;
                }
            }
            // Phase boundary: materialize the next phase's registers.
            let next_pc = first_released_pc.min(end - 1);
            let (pi, _) = self.stream[next_pc];
            if pi != self.slots[si].phase && pi < self.kernel.phases().len() {
                self.slots[si].phase = pi;
                self.enter_phase(si);
            }
        }
        released
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        global: &mut MemImage,
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        stats: &mut RunStats,
        per_phase: &mut [PhaseStats],
        prev: &mut PhaseStats,
        limits: &RunLimits<'_>,
    ) -> Result<u64> {
        if self.stream.is_empty() {
            return Ok(self.now);
        }
        for si in 0..self.slots.len() {
            self.enter_phase(si);
        }
        let end = self.stream.len();
        loop {
            if self.warps.iter().all(|w| w.pc >= end) {
                let settle = self
                    .warps
                    .iter()
                    .map(|w| w.mem_settle)
                    .max()
                    .unwrap_or(self.now);
                return Ok(self.now.max(settle));
            }
            // Cooperative limits: deadline / cancellation, checked after
            // the completion test so a wave that finished exactly at the
            // budget still returns, and deterministically at the same
            // simulated cycle on every host.
            limits.check(self.now)?;

            // Barrier releases are the only events that can advance the
            // phase frontier; when it moves, credit everything since the
            // previous snapshot to the phase that just drained.
            if self.release_barriers(end, stats) && self.phase_count > 1 {
                if let Some(f) = self.min_unfinished_phase(end) {
                    if f > self.frontier {
                        let cum = cumulative_snapshot(stats, self.now, mem, scratch);
                        per_phase[self.frontier].accumulate(&cum.minus(prev));
                        *prev = cum;
                        self.frontier = f;
                    }
                }
            }

            // Round-robin issue over every resident warp.
            let n = self.warps.len();
            let mut issued = false;
            for k in 0..n {
                let wi = (self.rr + k) % n;
                let w = &self.warps[wi];
                if w.pc >= end || w.at_barrier || w.ready_at > self.now {
                    continue;
                }
                let (pi, instr) = self.stream[w.pc];
                match instr {
                    GpuInstr::Barrier => {
                        self.warps[wi].at_barrier = true;
                        // Parking is free; try the next warp this cycle.
                        continue;
                    }
                    GpuInstr::Op { node, .. } => {
                        let graph = &self.kernel.phases()[pi];
                        if self.operands_ready(w, graph, node) > self.now {
                            continue;
                        }
                        if self.issue(wi, pi, instr, global, mem, scratch, stats)? {
                            self.rr = (wi + 1) % n;
                            issued = true;
                            break;
                        }
                        // Memory-structural stall (MSHRs full): let another
                        // warp try — hiding latency is the SM's job.
                    }
                }
            }
            if !issued && self.warps.iter().any(|w| w.pc < end) {
                stats.gpu_stall_cycles += 1;
            }
            self.now += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_common::geom::Dim3;
    use dmt_dfg::{interp, KernelBuilder};

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    fn differential(kernel: &Kernel, params: Vec<Word>, mem: MemImage) -> RunStats {
        // The oracle borrows the launch; only the machine consumes it.
        let oracle = interp::run_ref(kernel, &params, &mem).unwrap();
        let run = GpuMachine::new(cfg())
            .run(kernel, LaunchInput::new(params, mem))
            .unwrap();
        assert_eq!(run.memory, oracle.memory, "GPU memory diverges from oracle");
        run.stats
    }

    #[test]
    fn simple_map_kernel() {
        let n = 128u32;
        let mut kb = KernelBuilder::new("map", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(inp, tid, 4);
        let x = kb.load_global(a);
        let y = kb.add_i(x, x);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, y);
        let k = kb.finish().unwrap();
        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_i32_slice(Addr(0), &(0..n as i32).collect::<Vec<_>>());
        let stats = differential(&k, vec![Word::from_u32(0), Word::from_u32(4 * n)], mem);
        // Per warp: 2×(mul+add) addressing, load, add, store = 7.
        assert_eq!(stats.gpu_instructions, u64::from(n / 32) * 7);
        assert!(stats.global_loads >= 4, "4 coalesced lines");
        assert!(stats.cycles > 0);
    }

    #[test]
    fn two_phase_shared_kernel_with_barrier() {
        let n = 64u32;
        let mut kb = KernelBuilder::new("stage", Dim3::linear(n));
        kb.set_shared_words(n);
        let tid = kb.thread_idx(0);
        let z = kb.const_i(0);
        let sa = kb.index_addr(z, tid, 4);
        kb.store_shared(sa, tid);
        kb.barrier();
        let tid2 = kb.thread_idx(0);
        let out = kb.param("out");
        let z2 = kb.const_i(0);
        // Read the neighbour's slot (wrapping): classic post-barrier read.
        let one = kb.const_i(1);
        let tplus = kb.add_i(tid2, one);
        let nn = kb.const_i(n as i32);
        let wrapped = kb.rem_i(tplus, nn);
        let sa2 = kb.index_addr(z2, wrapped, 4);
        let v = kb.load_shared(sa2);
        let oa = kb.index_addr(out, tid2, 4);
        kb.store_global(oa, v);
        let k = kb.finish().unwrap();
        let stats = differential(
            &k,
            vec![Word::from_u32(0)],
            MemImage::with_words(n as usize),
        );
        assert_eq!(stats.barriers, u64::from(n / 32), "each warp synchronizes");
        assert_eq!(stats.shared_stores, u64::from(n));
        assert_eq!(stats.shared_loads, u64::from(n));
    }

    #[test]
    fn coalescing_reduces_transactions() {
        // Unit-stride access by 32 lanes over 4-byte words = 1 line (128B).
        let n = 32u32;
        let mut kb = KernelBuilder::new("coal", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(inp, tid, 4);
        let x = kb.load_global(a);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, x);
        let k = kb.finish().unwrap();
        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_i32_slice(Addr(0), &(0..n as i32).collect::<Vec<_>>());
        let stats = differential(&k, vec![Word::from_u32(0), Word::from_u32(4 * n)], mem);
        assert_eq!(stats.global_loads, 1, "fully coalesced warp load");
        assert_eq!(stats.global_stores, 1);
    }

    #[test]
    fn strided_access_is_not_coalesced() {
        // Stride of one line per lane: 8 lanes → 8 transactions.
        let n = 8u32;
        let mut kb = KernelBuilder::new("stride", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(inp, tid, 128);
        let x = kb.load_global(a);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, x);
        let k = kb.finish().unwrap();
        let mut mem = MemImage::with_words(512);
        for i in 0..n {
            mem.store(Addr(u64::from(i) * 128), Word::from_i32(i as i32));
        }
        let stats = differential(&k, vec![Word::from_u32(0), Word::from_u32(1024)], mem);
        assert_eq!(stats.global_loads, 8, "one transaction per lane");
    }

    #[test]
    fn gpu_rejects_dmt_kernels() {
        use dmt_common::geom::Delta;
        let mut kb = KernelBuilder::new("comm", Dim3::linear(8));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let v = kb.from_thread_or_const(tid, Delta::new(-1), Word::ZERO, None);
        let a = kb.index_addr(out, tid, 4);
        kb.store_global(a, v);
        let k = kb.finish().unwrap();
        assert!(GpuMachine::new(cfg())
            .run(
                &k,
                LaunchInput::new(vec![Word::ZERO], MemImage::with_words(8))
            )
            .is_err());
    }

    #[test]
    fn determinism() {
        let n = 64u32;
        let mut kb = KernelBuilder::new("det", Dim3::linear(n));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let x = kb.mul_i(tid, tid);
        let a = kb.index_addr(out, tid, 4);
        kb.store_global(a, x);
        let k = kb.finish().unwrap();
        let run = || {
            GpuMachine::new(cfg())
                .run(
                    &k,
                    LaunchInput::new(vec![Word::from_u32(0)], MemImage::with_words(n as usize)),
                )
                .unwrap()
                .stats
                .cycles
        };
        assert_eq!(run(), run());
    }
}
