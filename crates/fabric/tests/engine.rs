//! Fabric-engine behaviour tests: injection windows, backpressure,
//! deadlock diagnostics and long-distance forwarding timing.

use dmt_common::config::SystemConfig;
use dmt_common::geom::{Delta, Dim3};
use dmt_common::ids::Addr;
use dmt_common::memimg::MemImage;
use dmt_common::value::Word;
use dmt_dfg::{Kernel, KernelBuilder, LaunchInput};
use dmt_fabric::testutil::naive_program;
use dmt_fabric::FabricMachine;

fn chain_kernel(n: u32, depth: u32) -> Kernel {
    let mut kb = KernelBuilder::new("chain", Dim3::linear(n));
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let one = kb.const_i(1);
    let mut v = tid;
    for _ in 0..depth {
        v = kb.add_i(v, one);
    }
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, v);
    kb.finish().unwrap()
}

fn run_with(cfg: SystemConfig, kernel: &Kernel) -> dmt_common::stats::RunStats {
    let n = kernel.threads_per_block() * kernel.grid_blocks();
    FabricMachine::new(cfg)
        .run(
            &naive_program(kernel, 12),
            LaunchInput::new(vec![Word::from_u32(0)], MemImage::with_words(n as usize)),
        )
        .unwrap()
        .stats
}

#[test]
fn smaller_inflight_window_throttles_throughput() {
    let kernel = chain_kernel(512, 4);
    let mut small = SystemConfig::default();
    small.fabric.inflight_threads = 8;
    let mut large = SystemConfig::default();
    large.fabric.inflight_threads = 2048;
    let t_small = run_with(small, &kernel).cycles;
    let t_large = run_with(large, &kernel).cycles;
    assert!(
        t_small as f64 > 1.5 * t_large as f64,
        "window 8 ({t_small}) should be much slower than 2048 ({t_large})"
    );
}

#[test]
fn tiny_ldst_queues_register_backpressure() {
    let kernel = chain_kernel(512, 1);
    let mut cfg = SystemConfig::default();
    cfg.fabric.ldst_queue_entries = 1;
    let stats = run_with(cfg, &kernel);
    assert!(
        stats.backpressure_cycles > 0,
        "a 1-entry store queue must stall"
    );
    let relaxed = run_with(SystemConfig::default(), &kernel);
    assert!(relaxed.cycles < stats.cycles);
}

#[test]
fn deadlock_reports_the_stuck_state() {
    // An eLDST whose predicate is false for every thread: the fabric
    // parks all of them and must report the deadlock, not hang.
    let n = 8u32;
    let mut kb = KernelBuilder::new("stuck", Dim3::linear(n));
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let zero = kb.const_i(0);
    let never = kb.lt_s(tid, zero);
    let v = kb.from_thread_or_mem(inp, never, Delta::new(-1), None);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, v);
    let kernel = kb.finish().unwrap();
    let err = FabricMachine::new(SystemConfig::default())
        .run(
            &naive_program(&kernel, 12),
            LaunchInput::new(
                vec![Word::ZERO, Word::from_u32(0)],
                MemImage::with_words(n as usize),
            ),
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("deadlock") || msg.contains("no in-window source"),
        "{msg}"
    );
}

#[test]
fn noc_hop_latency_stretches_the_pipeline() {
    let kernel = chain_kernel(256, 8);
    let mut slow = SystemConfig::default();
    slow.fabric.noc_hop_latency = 8;
    let t_fast = run_with(SystemConfig::default(), &kernel).cycles;
    let t_slow = run_with(slow, &kernel).cycles;
    assert!(t_slow > t_fast, "{t_slow} !> {t_fast}");
}

#[test]
fn elevator_counters_balance_across_windows() {
    // Δ = -1, window 16, 256 threads: 16 fallback constants, 240 transfers.
    let n = 256u32;
    let mut kb = KernelBuilder::new("bal", Dim3::linear(n));
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let v = kb.from_thread_or_const(tid, Delta::new(-1), Word::ZERO, Some(16));
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, v);
    let kernel = kb.finish().unwrap();
    let stats = run_with(SystemConfig::default(), &kernel);
    assert_eq!(stats.elevator_const_tokens, 16);
    assert_eq!(
        stats.elevator_ops,
        u64::from(n),
        "every input token consumed"
    );
    assert_eq!(stats.threads_retired, u64::from(n));
}

#[test]
fn reconfiguration_cost_scales_with_phase_count() {
    let build = |phases: u32| {
        let n = 32u32;
        let mut kb = KernelBuilder::new("phases", Dim3::linear(n));
        kb.set_shared_words(n);
        let tid = kb.thread_idx(0);
        let z = kb.const_i(0);
        let sa = kb.index_addr(z, tid, 4);
        kb.store_shared(sa, tid);
        for _ in 1..phases {
            kb.barrier();
            let tid = kb.thread_idx(0);
            let z = kb.const_i(0);
            let sa = kb.index_addr(z, tid, 4);
            let v = kb.load_shared(sa);
            let one = kb.const_i(1);
            let v2 = kb.add_i(v, one);
            kb.store_shared(sa, v2);
        }
        kb.barrier();
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let z = kb.const_i(0);
        let sa = kb.index_addr(z, tid, 4);
        let v = kb.load_shared(sa);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, v);
        kb.finish().unwrap()
    };
    let short = build(2);
    let long = build(6);
    let t_short = run_with(SystemConfig::default(), &short).cycles;
    let t_long = run_with(SystemConfig::default(), &long).cycles;
    assert!(t_long > t_short + 4 * SystemConfig::default().fabric.reconfiguration_cycles);
    // And the functional result survives all those drains.
    let n = 32;
    let run = FabricMachine::new(SystemConfig::default())
        .run(
            &naive_program(&long, 12),
            LaunchInput::new(vec![Word::from_u32(0)], MemImage::with_words(n)),
        )
        .unwrap();
    let got = run.memory.read_i32_slice(Addr(0), n);
    for (t, &v) in got.iter().enumerate() {
        assert_eq!(v, t as i32 + 5, "5 increments applied");
    }
}
