//! The cycle-level MT-CGRA / dMT-CGRA execution engine.
//!
//! The machine executes a [`FabricProgram`] with dynamic tagged-token
//! dataflow (§3): every token carries its thread id as a tag; per-node
//! matching stores collect operand sets; a node fires at most one operation
//! per cycle; fired tokens traverse the statically-routed NoC with
//! per-edge hop latency. Threads are injected one per cycle (configurable)
//! subject to the in-flight window, and a barrier-delimited phase ends when
//! the fabric drains.
//!
//! Elevator nodes re-tag tokens between threads, and eLDST units forward
//! loaded values to later threads, exactly as in the paper's Fig 8/9
//! pseudo-code. Both are functionally identical to — and tested against —
//! the reference interpreter in `dmt-dfg`.

use crate::program::{FabricProgram, PhaseProgram};
use dmt_common::config::{SystemConfig, UnitClass, WritePolicy};
use dmt_common::ids::{Addr, NodeId};
use dmt_common::memimg::MemImage;
use dmt_common::stats::RunStats;
use dmt_common::value::Word;
use dmt_common::{Error, Result};
use dmt_dfg::kernel::LaunchInput;
use dmt_dfg::node::{eval_pure, MemSpace, NodeKind};
use dmt_mem::{AccessOutcome, Lvc, MemSystem, Scratchpad};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Result of a fabric run: final memory image plus statistics.
#[derive(Debug, Clone)]
pub struct FabricRunResult {
    /// Final global-memory image.
    pub memory: MemImage,
    /// Event counters and total cycles.
    pub stats: RunStats,
}

/// The CGRA core simulator. Construct once per configuration and run
/// compiled programs on it.
///
/// # Examples
///
/// See the crate-level docs; programs are normally produced by
/// `dmt-compiler`.
#[derive(Debug, Clone)]
pub struct FabricMachine {
    cfg: SystemConfig,
}

impl FabricMachine {
    /// Creates a machine with the given configuration (Table 2 defaults via
    /// `SystemConfig::default()`).
    #[must_use]
    pub fn new(cfg: SystemConfig) -> FabricMachine {
        FabricMachine { cfg }
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Executes `program` on `input`, running grid blocks and phases
    /// sequentially on one core (the paper's per-core comparison).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Runtime`] for parameter mismatches or bad
    /// addresses, and [`Error::Deadlock`] when the fabric cannot make
    /// progress.
    pub fn run(&self, program: &FabricProgram, input: LaunchInput) -> Result<FabricRunResult> {
        if input.params.len() != program.param_count {
            return Err(Error::Runtime(format!(
                "program {} expects {} parameters, got {}",
                program.name,
                program.param_count,
                input.params.len()
            )));
        }
        let mut global = input.memory;
        let mut stats = RunStats::default();
        // The CGRA cores use write-back / write-allocate L1 (§5.1).
        let mut mem = MemSystem::new(&self.cfg.mem, WritePolicy::WriteBackAllocate);
        let mut lvc = Lvc::new(self.cfg.mem.lvc);
        let mut scratch = Scratchpad::new(self.cfg.mem.scratchpad);
        let mut now = 0u64;

        // Phase-major execution: the fabric is configured for phase p and
        // *every* block's threads stream through it back to back (blocks
        // are independent; a barrier only orders phases within one block,
        // and executing phase p of all blocks before phase p+1 of any
        // trivially satisfies it). Single-phase dMT kernels therefore
        // stream the entire launch with no drain at all — the paper's core
        // claim — while shared-memory kernels drain once per barrier.
        let mut shared_imgs: Vec<MemImage> = (0..program.grid_blocks)
            .map(|_| MemImage::with_words(program.shared_words as usize))
            .collect();
        for (pi, phase) in program.phases.iter().enumerate() {
            if pi > 0 {
                now += self.cfg.fabric.reconfiguration_cycles;
            }
            let mut exec = PhaseExec::new(
                &self.cfg,
                program,
                phase,
                0,
                &input.params,
                now,
                program.grid_blocks,
            );
            now = exec.run(
                &mut global,
                &mut shared_imgs,
                &mut mem,
                &mut scratch,
                &mut lvc,
                &mut stats,
            )?;
            stats.phases += 1;
        }
        stats.shared_bank_conflicts = scratch.bank_conflicts;
        stats.cycles = now;
        mem.export_stats(&mut stats);
        stats.lvc_reads = lvc.reads;
        stats.lvc_writes = lvc.writes;
        Ok(FabricRunResult {
            memory: global,
            stats,
        })
    }
}

/// A token-delivery or bookkeeping event on the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// A token arrives at `node`'s matching store.
    Deliver {
        node: NodeId,
        port: u8,
        tid: u32,
        value: Word,
    },
    /// An eLDST output becomes architecturally visible: fan it out and
    /// offer the duplicate to the next thread in the window.
    EloadProduce { node: NodeId, tid: u32, value: Word },
    /// An eLDST duplicate token reaches the token buffer (after any
    /// Fig 10b loop latency): hand it to a parked consumer or buffer it.
    EloadOffer { node: NodeId, tid: u32, value: Word },
    /// A memory operation completed; release the unit's outstanding slot.
    Release { node: NodeId },
    /// A sink operation of `tid` completed.
    SinkDone { tid: u32 },
}

// Word lacks Ord; wrap ordering manually.
impl Ev {
    fn key(&self) -> (u8, u32) {
        match self {
            Ev::Deliver { node, .. } => (0, node.0),
            Ev::EloadProduce { node, .. } => (1, node.0),
            Ev::EloadOffer { node, .. } => (2, node.0),
            Ev::Release { node } => (3, node.0),
            Ev::SinkDone { tid } => (4, *tid),
        }
    }
}

/// Per-node runtime state.
#[derive(Debug, Default)]
struct UnitState {
    /// Matching store: tid → partially assembled operand set.
    pending: HashMap<u32, ([Option<Word>; 3], u8)>,
    /// Complete operand sets awaiting their firing slot.
    ready: VecDeque<(u32, [Word; 3])>,
    /// eLDST token buffer: values forwarded to a target tid.
    fwd: HashMap<u32, Word>,
    /// eLDST threads whose predicate was false and whose source value has
    /// not arrived yet.
    parked: Vec<u32>,
    /// Outstanding memory operations (LDST occupancy).
    outstanding: u32,
}

struct PhaseExec<'a> {
    cfg: &'a SystemConfig,
    program: &'a FabricProgram,
    phase: &'a PhaseProgram,
    /// First block of this execution (streaming runs cover all blocks).
    block: u32,
    params: &'a [Word],
    /// Total threads executed by this PhaseExec (one block, or the whole
    /// launch when streaming).
    threads: u32,
    /// Threads per block — communication and thread coordinates are always
    /// block-local (§3.1: threads communicate within a thread block).
    block_threads: u32,
    units: Vec<UnitState>,
    events: BinaryHeap<Reverse<(u64, u64, EvOrd)>>,
    seq: u64,
    now: u64,
    next_inject: u32,
    retire_floor: u32,
    retired: Vec<bool>,
    sinks_done: Vec<u32>,
    sink_count: u32,
    retired_count: u32,
    source_nodes: Vec<NodeId>,
    /// Elevator nodes with their configuration: fallback constants are
    /// generated at thread injection (the controller tracks the TID stream,
    /// so window-start threads get their constant without waiting for any
    /// data token — essential for recurrent chains like Fig 6).
    elevator_nodes: Vec<(NodeId, dmt_dfg::node::CommConfig, Word)>,
}

/// `Ev` with a total order (Word is Eq but its payload must not influence
/// heap order beyond determinism; the (cycle, seq) prefix already makes
/// ordering unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EvOrd(Ev);

impl PartialOrd for EvOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EvOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

impl<'a> PhaseExec<'a> {
    fn new(
        cfg: &'a SystemConfig,
        program: &'a FabricProgram,
        phase: &'a PhaseProgram,
        block: u32,
        params: &'a [Word],
        start: u64,
        blocks_covered: u32,
    ) -> PhaseExec<'a> {
        let n = phase.graph.len();
        let threads = program.threads_per_block() * blocks_covered;
        let sink_count = phase
            .graph
            .node_ids()
            .filter(|&id| phase.graph.consumers(id).is_empty())
            .count() as u32;
        let source_nodes: Vec<NodeId> = phase
            .graph
            .node_ids()
            .filter(|&id| phase.graph.kind(id).is_source())
            .collect();
        let elevator_nodes: Vec<(NodeId, dmt_dfg::node::CommConfig, Word)> = phase
            .graph
            .node_ids()
            .filter_map(|id| match *phase.graph.kind(id) {
                NodeKind::Elevator { comm, fallback } => Some((id, comm, fallback)),
                _ => None,
            })
            .collect();
        let mut units = Vec::with_capacity(n);
        units.resize_with(n, UnitState::default);
        PhaseExec {
            cfg,
            program,
            phase,
            block,
            params,
            threads,
            block_threads: program.threads_per_block(),
            units,
            events: BinaryHeap::new(),
            seq: 0,
            now: start,
            next_inject: 0,
            retire_floor: 0,
            retired: vec![false; threads as usize],
            sinks_done: vec![0; threads as usize],
            sink_count,
            retired_count: 0,
            source_nodes,
            elevator_nodes,
        }
    }

    fn schedule(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        // Nothing lands in the cycle that scheduled it: tokens cross at
        // least one pipeline boundary.
        self.events
            .push(Reverse((at.max(self.now + 1), self.seq, EvOrd(ev))));
    }

    /// Fans `value` out from `node` to all consumers, booking NoC hops.
    /// `base` is the cycle the producing unit's result is available.
    fn send(&mut self, node: NodeId, tid: u32, value: Word, base: u64, stats: &mut RunStats) {
        let consumers = self.phase.graph.consumers(node);
        if consumers.is_empty() {
            self.schedule(base, Ev::SinkDone { tid });
            return;
        }
        for (i, &(consumer, port)) in consumers.iter().enumerate() {
            let hops = self.phase.edge_hops[node.index()][i];
            stats.tokens_routed += 1;
            stats.noc_hops += hops;
            let arrival = base + self.cfg.fabric.noc_hop_latency * hops;
            self.schedule(
                arrival,
                Ev::Deliver {
                    node: consumer,
                    port: port.0,
                    tid,
                    value,
                },
            );
        }
    }

    fn source_value(&self, kind: &NodeKind, tid: u32) -> Word {
        match *kind {
            NodeKind::Const(w) => w,
            NodeKind::ThreadIdx(dim) => Word::from_u32(
                self.program
                    .block
                    .coord(dmt_common::ids::ThreadId(tid % self.block_threads), dim),
            ),
            NodeKind::BlockIdx => Word::from_u32(self.block + tid / self.block_threads),
            NodeKind::Param(slot) => self.params[usize::from(slot)],
            ref other => unreachable!("not a source: {other}"),
        }
    }

    /// Block-local communication: the sender of `tid`'s token, or `None`
    /// at window/block boundaries. Streaming runs carry several blocks in
    /// one tid space; communication never crosses a block.
    fn comm_source(&self, comm: &dmt_dfg::node::CommConfig, tid: u32) -> Option<u32> {
        let local = tid % self.block_threads;
        comm.source_of(local, self.block_threads)
            .map(|src_local| tid - local + src_local)
    }

    /// Block-local communication: the receiver of `tid`'s token.
    fn comm_target(&self, comm: &dmt_dfg::node::CommConfig, tid: u32) -> Option<u32> {
        let local = tid % self.block_threads;
        comm.target_of(local, self.block_threads)
            .map(|dst_local| tid - local + dst_local)
    }

    /// In-flight memory operations a (replicated) LDST node may hold: one
    /// request queue per physical replica.
    fn outstanding_cap(&self) -> u32 {
        self.cfg.fabric.ldst_queue_entries * self.program.replication.max(1)
    }

    fn can_inject(&self) -> bool {
        self.next_inject < self.threads
            && self.next_inject < self.retire_floor + self.cfg.fabric.inflight_threads
    }

    fn inject(&mut self, stats: &mut RunStats) {
        // One injector per graph replica (§3): R threads enter per cycle.
        let per_cycle = self.cfg.fabric.threads_injected_per_cycle * self.program.replication;
        for _ in 0..per_cycle {
            if !self.can_inject() {
                return;
            }
            let tid = self.next_inject;
            self.next_inject += 1;
            for i in 0..self.source_nodes.len() {
                let node = self.source_nodes[i];
                let v = self.source_value(self.phase.graph.kind(node), tid);
                self.send(node, tid, v, self.now, stats);
            }
            // Elevator fallback constants for threads with no in-window
            // producer: generated from the TID stream at injection.
            for i in 0..self.elevator_nodes.len() {
                let (node, comm, fallback) = self.elevator_nodes[i];
                if self.comm_source(&comm, tid).is_none() {
                    stats.elevator_const_tokens += 1;
                    self.send(
                        node,
                        tid,
                        fallback,
                        self.now + self.cfg.latencies.elevator,
                        stats,
                    );
                }
            }
        }
    }

    fn deliver(&mut self, node: NodeId, port: u8, tid: u32, value: Word, stats: &mut RunStats) {
        stats.token_buffer_writes += 1;
        let arity = self.phase.graph.kind(node).arity() as u8;
        let unit = &mut self.units[node.index()];
        let entry = unit.pending.entry(tid).or_insert(([None; 3], 0));
        debug_assert!(entry.0[port as usize].is_none(), "duplicate operand");
        entry.0[port as usize] = Some(value);
        entry.1 += 1;
        if entry.1 == arity {
            let (ops, _) = unit.pending.remove(&tid).expect("entry exists");
            let ops = [
                ops[0].unwrap_or(Word::ZERO),
                ops[1].unwrap_or(Word::ZERO),
                ops[2].unwrap_or(Word::ZERO),
            ];
            unit.ready.push_back((tid, ops));
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fire_all(
        &mut self,
        global: &mut MemImage,
        shared_imgs: &mut [MemImage],
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        lvc: &mut Lvc,
        stats: &mut RunStats,
    ) -> Result<()> {
        let mut any_blocked = false;
        // Each node exists once per graph replica, so it fires up to R
        // operations per cycle.
        let fires_per_cycle = self.program.replication.max(1);
        for ix in 0..self.phase.graph.len() {
            let node = NodeId(ix as u32);
            for _ in 0..fires_per_cycle {
                let Some((tid, ops)) = self.units[ix].ready.pop_front() else {
                    break;
                };
                match self.fire_one(
                    node,
                    tid,
                    ops,
                    global,
                    shared_imgs,
                    mem,
                    scratch,
                    lvc,
                    stats,
                )? {
                    Fired::Done => {}
                    Fired::Blocked => {
                        // Structural stall: retry the same token next cycle.
                        self.units[ix].ready.push_front((tid, ops));
                        any_blocked = true;
                        break;
                    }
                }
            }
        }
        if any_blocked {
            stats.backpressure_cycles += 1;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn fire_one(
        &mut self,
        node: NodeId,
        tid: u32,
        ops: [Word; 3],
        global: &mut MemImage,
        shared_imgs: &mut [MemImage],
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        lvc: &mut Lvc,
        stats: &mut RunStats,
    ) -> Result<Fired> {
        let lat = &self.cfg.latencies;
        let kind = *self.phase.graph.kind(node);
        match kind {
            NodeKind::Alu(_)
            | NodeKind::Fpu(_)
            | NodeKind::Special(_)
            | NodeKind::Ctrl(_)
            | NodeKind::Unary(_)
            | NodeKind::Select
            | NodeKind::Join
            | NodeKind::Split => {
                let arity = kind.arity();
                let value = eval_pure(&kind, &ops[..arity]);
                let (latency, class) = match kind.unit_class().expect("compute node") {
                    UnitClass::Alu => (lat.alu, &mut stats.alu_ops),
                    UnitClass::Fpu => (lat.fpu, &mut stats.fpu_ops),
                    UnitClass::Special => (lat.special, &mut stats.special_ops),
                    UnitClass::Control => (lat.control, &mut stats.control_ops),
                    UnitClass::SplitJoin => (lat.sju, &mut stats.sju_ops),
                    UnitClass::LoadStore => unreachable!("handled below"),
                };
                *class += 1;
                self.send(node, tid, value, self.now + latency, stats);
                Ok(Fired::Done)
            }
            NodeKind::Load(space) => self.memory_load(
                node,
                tid,
                ops[0],
                space,
                global,
                shared_imgs,
                mem,
                scratch,
                stats,
            ),
            NodeKind::Store(space) => {
                if self.units[node.index()].outstanding >= self.outstanding_cap() {
                    return Ok(Fired::Blocked);
                }
                let addr = Addr(u64::from(ops[0].as_u32()));
                // Stores are fire-and-forget: the unit hands the request to
                // the memory system (which books bandwidth and may fill a
                // line in the background) and acknowledges as soon as it is
                // accepted — the same treatment the SIMT baseline gets.
                let ack = match space {
                    MemSpace::Global => match mem.store(addr, self.now + lat.ldst_issue) {
                        AccessOutcome::Done(_fill) => {
                            stats.global_stores += 1;
                            global.try_store(addr, ops[1])?;
                            self.now + lat.ldst_issue + 1
                        }
                        AccessOutcome::StallMshrFull => return Ok(Fired::Blocked),
                    },
                    MemSpace::Shared => {
                        stats.shared_stores += 1;
                        let b = (tid / self.block_threads) as usize;
                        shared_imgs[b].try_store(addr, ops[1])?;
                        scratch.access(addr, self.now + lat.ldst_issue)
                    }
                };
                self.units[node.index()].outstanding += 1;
                self.schedule(ack, Ev::Release { node });
                // The ordering token (or sink completion) appears at the
                // acknowledgement.
                self.send(node, tid, Word::ZERO, ack, stats);
                Ok(Fired::Done)
            }
            NodeKind::Elevator { comm, .. } => {
                stats.elevator_ops += 1;
                let spilled = self.phase.lvc_spilled.contains(&node);
                if let Some(dst) = self.comm_target(&comm, tid) {
                    let base = if spilled {
                        // Producer writes the LVC; consumer reads it back.
                        let slot = Addr(u64::from(dst % self.cfg.mem.lvc.entries) * 4);
                        let written = lvc.write(slot, self.now + lat.elevator);
                        lvc.read(slot, written)
                    } else {
                        self.now + lat.elevator
                    };
                    self.send(node, dst, ops[0], base, stats);
                }
                // Fallback constants are generated at injection (see
                // `inject`), not here — a recurrent chain's first thread
                // must receive its constant before any input token exists.
                Ok(Fired::Done)
            }
            NodeKind::ELoad { comm, space } => {
                let enable = ops[1].as_bool();
                if enable {
                    let fired = self.memory_load_eld(
                        node,
                        tid,
                        ops[0],
                        space,
                        global,
                        shared_imgs,
                        mem,
                        scratch,
                        stats,
                    )?;
                    return Ok(fired);
                }
                let Some(_) = self.comm_source(&comm, tid) else {
                    return Err(Error::Runtime(format!(
                        "eLDST {node}: thread {tid} has a false predicate but no in-window \
                         source thread"
                    )));
                };
                if let Some(v) = self.units[node.index()].fwd.remove(&tid) {
                    stats.eldst_forwards += 1;
                    self.schedule(
                        self.now + lat.ldst_issue,
                        Ev::EloadProduce {
                            node,
                            tid,
                            value: v,
                        },
                    );
                } else {
                    self.units[node.index()].parked.push(tid);
                }
                Ok(Fired::Done)
            }
            NodeKind::Const(_)
            | NodeKind::ThreadIdx(_)
            | NodeKind::BlockIdx
            | NodeKind::Param(_) => unreachable!("sources are injected, never fired"),
        }
    }

    /// Books and issues a plain load.
    #[allow(clippy::too_many_arguments)]
    fn memory_load(
        &mut self,
        node: NodeId,
        tid: u32,
        addr_w: Word,
        space: MemSpace,
        global: &mut MemImage,
        shared_imgs: &mut [MemImage],
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        stats: &mut RunStats,
    ) -> Result<Fired> {
        if self.units[node.index()].outstanding >= self.outstanding_cap() {
            return Ok(Fired::Blocked);
        }
        let addr = Addr(u64::from(addr_w.as_u32()));
        let issue = self.now + self.cfg.latencies.ldst_issue;
        let (value, done) = match space {
            MemSpace::Global => match mem.load(addr, issue) {
                AccessOutcome::Done(t) => {
                    stats.global_loads += 1;
                    (global.try_load(addr)?, t)
                }
                AccessOutcome::StallMshrFull => return Ok(Fired::Blocked),
            },
            MemSpace::Shared => {
                stats.shared_loads += 1;
                let b = (tid / self.block_threads) as usize;
                (shared_imgs[b].try_load(addr)?, scratch.access(addr, issue))
            }
        };
        self.units[node.index()].outstanding += 1;
        self.schedule(done, Ev::Release { node });
        self.send(node, tid, value, done, stats);
        Ok(Fired::Done)
    }

    /// Books and issues the loading half of an eLDST; the produced value is
    /// routed through [`Ev::EloadProduce`] so the duplicate token is offered
    /// to the next thread in the window.
    #[allow(clippy::too_many_arguments)]
    fn memory_load_eld(
        &mut self,
        node: NodeId,
        tid: u32,
        addr_w: Word,
        space: MemSpace,
        global: &mut MemImage,
        shared_imgs: &mut [MemImage],
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        stats: &mut RunStats,
    ) -> Result<Fired> {
        if self.units[node.index()].outstanding >= self.outstanding_cap() {
            return Ok(Fired::Blocked);
        }
        let addr = Addr(u64::from(addr_w.as_u32()));
        let issue = self.now + self.cfg.latencies.ldst_issue;
        let (value, done) = match space {
            MemSpace::Global => match mem.load(addr, issue) {
                AccessOutcome::Done(t) => {
                    stats.global_loads += 1;
                    (global.try_load(addr)?, t)
                }
                AccessOutcome::StallMshrFull => return Ok(Fired::Blocked),
            },
            MemSpace::Shared => {
                stats.shared_loads += 1;
                let b = (tid / self.block_threads) as usize;
                (shared_imgs[b].try_load(addr)?, scratch.access(addr, issue))
            }
        };
        self.units[node.index()].outstanding += 1;
        self.schedule(done, Ev::Release { node });
        self.schedule(done, Ev::EloadProduce { node, tid, value });
        Ok(Fired::Done)
    }

    /// Handles an eLDST output becoming visible: fan out downstream, then
    /// duplicate the token to `tid + shift` (§4.2), waking a parked thread
    /// if it is already waiting. Long-distance eLDSTs pay the Fig 10b
    /// elevator-loop latency (and LVC-spilled ones the spill round-trip) on
    /// the duplicate path.
    fn eload_produce(
        &mut self,
        node: NodeId,
        tid: u32,
        value: Word,
        lvc: &mut Lvc,
        stats: &mut RunStats,
    ) {
        self.send(node, tid, value, self.now, stats);
        let NodeKind::ELoad { comm, .. } = *self.phase.graph.kind(node) else {
            unreachable!("eload_produce on non-eLDST node");
        };
        if let Some(dst) = self.comm_target(&comm, tid) {
            let loop_latency = self
                .phase
                .eldst_loop_latency
                .get(&node)
                .copied()
                .unwrap_or(0);
            let offer_at = if self.phase.lvc_spilled.contains(&node) {
                let slot = Addr(u64::from(dst % self.cfg.mem.lvc.entries) * 4);
                let written = lvc.write(slot, self.now);
                lvc.read(slot, written)
            } else {
                self.now + self.cfg.latencies.ldst_issue + loop_latency
            };
            self.schedule(
                offer_at,
                Ev::EloadOffer {
                    node,
                    tid: dst,
                    value,
                },
            );
        }
    }

    /// The duplicate token lands in the eLDST token buffer.
    fn eload_offer(&mut self, node: NodeId, dst: u32, value: Word, stats: &mut RunStats) {
        stats.token_buffer_writes += 1;
        let unit = &mut self.units[node.index()];
        if let Some(pos) = unit.parked.iter().position(|&p| p == dst) {
            unit.parked.swap_remove(pos);
            stats.eldst_forwards += 1;
            self.schedule(
                self.now + self.cfg.latencies.ldst_issue,
                Ev::EloadProduce {
                    node,
                    tid: dst,
                    value,
                },
            );
        } else {
            unit.fwd.insert(dst, value);
        }
    }

    fn sink_done(&mut self, tid: u32, stats: &mut RunStats) {
        let t = tid as usize;
        self.sinks_done[t] += 1;
        if self.sinks_done[t] == self.sink_count && !self.retired[t] {
            self.retired[t] = true;
            self.retired_count += 1;
            stats.threads_retired += 1;
            while (self.retire_floor as usize) < self.retired.len()
                && self.retired[self.retire_floor as usize]
            {
                self.retire_floor += 1;
            }
        }
    }

    fn complete(&self) -> bool {
        self.retired_count == self.threads
            && self.events.is_empty()
            && self
                .units
                .iter()
                .all(|u| u.ready.is_empty() && u.parked.is_empty())
    }

    fn has_local_work(&self) -> bool {
        self.can_inject() || self.units.iter().any(|u| !u.ready.is_empty())
    }

    fn run(
        &mut self,
        global: &mut MemImage,
        shared_imgs: &mut [MemImage],
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        lvc: &mut Lvc,
        stats: &mut RunStats,
    ) -> Result<u64> {
        if self.sink_count == 0 {
            return Err(Error::Runtime(format!(
                "program {} phase has no sink nodes; threads can never retire",
                self.program.name
            )));
        }
        loop {
            // 1. Deliver everything due this cycle.
            while let Some(&Reverse((t, _, _))) = self.events.peek() {
                if t > self.now {
                    break;
                }
                let Reverse((_, _, EvOrd(ev))) = self.events.pop().expect("peeked");
                match ev {
                    Ev::Deliver {
                        node,
                        port,
                        tid,
                        value,
                    } => self.deliver(node, port, tid, value, stats),
                    Ev::EloadProduce { node, tid, value } => {
                        self.eload_produce(node, tid, value, lvc, stats);
                    }
                    Ev::EloadOffer { node, tid, value } => {
                        self.eload_offer(node, tid, value, stats);
                    }
                    Ev::Release { node } => {
                        let u = &mut self.units[node.index()];
                        u.outstanding = u.outstanding.saturating_sub(1);
                    }
                    Ev::SinkDone { tid } => self.sink_done(tid, stats),
                }
            }
            // 2. Inject new threads.
            self.inject(stats);
            // 3. Fire ready units (one op per unit per cycle).
            self.fire_all(global, shared_imgs, mem, scratch, lvc, stats)?;
            // 4. Done?
            if self.complete() {
                return Ok(self.now);
            }
            // 5. Advance time.
            if std::env::var_os("DMT_TRACE").is_some() && self.now % 200 == 0 {
                eprintln!(
                    "[trace] cycle={} injected={}/{} retired={} events={} ready={} outstanding={}",
                    self.now,
                    self.next_inject,
                    self.threads,
                    self.retired_count,
                    self.events.len(),
                    self.units.iter().map(|u| u.ready.len()).sum::<usize>(),
                    self.units.iter().map(|u| u.outstanding).sum::<u32>(),
                );
            }
            if self.has_local_work() {
                self.now += 1;
            } else if let Some(&Reverse((t, _, _))) = self.events.peek() {
                self.now = t;
            } else {
                let parked: Vec<String> = self
                    .units
                    .iter()
                    .enumerate()
                    .filter(|(_, u)| !u.parked.is_empty())
                    .map(|(i, u)| format!("n{i} waiting for {:?}", u.parked))
                    .collect();
                return Err(Error::Deadlock {
                    cycle: self.now,
                    detail: if parked.is_empty() {
                        format!(
                            "{} of {} threads retired, no events pending",
                            self.retired_count, self.threads
                        )
                    } else {
                        format!(
                            "eLDST threads parked without producers: {}",
                            parked.join("; ")
                        )
                    },
                });
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fired {
    Done,
    Blocked,
}
