//! The cycle-level MT-CGRA / dMT-CGRA execution engine.
//!
//! The machine executes a [`FabricProgram`] with dynamic tagged-token
//! dataflow (§3): every token carries its thread id as a tag; per-node
//! matching stores collect operand sets; a node fires at most one operation
//! per cycle; fired tokens traverse the statically-routed NoC with
//! per-edge hop latency. Threads are injected one per cycle (configurable)
//! subject to the in-flight window, and a barrier-delimited phase ends when
//! the fabric drains.
//!
//! Elevator nodes re-tag tokens between threads, and eLDST units forward
//! loaded values to later threads, exactly as in the paper's Fig 8/9
//! pseudo-code. Both are functionally identical to — and tested against —
//! the reference interpreter in `dmt-dfg`.
//!
//! # Hot-path structure
//!
//! The engine's per-cycle work is dominated by three structures, all
//! chosen so the common case is an array index, not a hash or a heap:
//!
//! * **Window-indexed matching stores.** Tokens are tagged with thread
//!   ids, and the injector admits thread `t` only after thread
//!   `t − inflight_threads` retired, so the set of tids that can hold
//!   matching-store state at one instant is bounded by the in-flight
//!   window (plus the total elevator/eLDST re-tag distance, which can
//!   briefly keep a stale tid's partial set alive past its retirement).
//!   Each node's store is therefore a power-of-two ring of slots indexed
//!   `tid & mask`, each slot tagged with the owning tid; the ring is
//!   sized to `min(window, threads) + 2·Σ|shift|` so distinct live tids
//!   map to distinct slots. A tid whose slot is held by another live tid
//!   — possible only if that bound is ever exceeded — falls back to a
//!   per-node spill map, preserving exact tagged-token semantics in all
//!   cases; the ring is an optimization, never a correctness assumption.
//! * **Calendar event queue.** Almost every scheduled event (NoC
//!   delivery, unit latency, cache hit) lands a small bounded number of
//!   cycles ahead, so events live in a bucket-per-cycle wheel
//!   ([`dmt_common::sched::CalendarQueue`]) with O(1) schedule/pop; rare
//!   far-future completions (contended DRAM) overflow to a heap. The
//!   queue pops in ascending `(cycle, insertion order)` — byte-identical
//!   to the `BinaryHeap<(cycle, seq, ev)>` it replaced, since the
//!   monotonic `seq` made per-cycle ordering FIFO already. That ordering
//!   contract is what keeps per-job cycles/energy/stats reproducible.
//! * **Active-node firing.** Instead of scanning every graph node every
//!   cycle, a bitmask tracks nodes with complete operand sets; firing
//!   iterates set bits in ascending node order (the same order the full
//!   scan used), so drained nodes cost nothing.
//! * **Edge-batched token delivery.** On highly replicated graphs a
//!   firing node's fan-out does not schedule one calendar event per
//!   token: all tokens crossing the same `(edge, arrival cycle)` coalesce
//!   into one calendar entry carrying an SoA payload (parallel
//!   seq/tid/value arrays, pooled in the [`StoreArena`] like the rings
//!   above), so a replicated graph pays the calendar once per edge per
//!   cycle instead of once per thread. Delivery preserves the **per-edge
//!   FIFO invariant**: every logical event is stamped with its global
//!   schedule sequence number, a batch's payload is appended in schedule
//!   order (strictly ascending seq), and at delivery each node's due
//!   in-edge batches are merged back into ascending-seq order — so every
//!   matching store observes its tokens in exactly the order the
//!   per-token engine delivered them, and operand sets complete (and
//!   fire) in the same order. Deliveries to *different* nodes touch
//!   disjoint matching-store state and commute, which is why the
//!   per-node merge is sufficient for byte-identical results;
//!   bookkeeping events (releases, sink completions, the eLDST
//!   offer/produce hops) stay per-token and are processed in schedule
//!   order among themselves. A batch holds at most `R` tokens (a node
//!   fires ≤ R ops per cycle and an edge's hop delay is fixed), so
//!   coalescing only amortizes its slab/merge overhead past a
//!   replication threshold ([`BATCH_MIN_REPLICATION`]); below it the
//!   engine delivers per token — the same mechanism, batch length 1 —
//!   which the bucket-wheel calendar already makes cheap. Both paths are
//!   forceable (`DMT_BATCHED_DELIVERY=1` / `DMT_UNBATCHED_DELIVERY=1`,
//!   [`FabricMachine::with_batched_delivery`] /
//!   [`FabricMachine::with_unbatched_delivery`]) and differentially
//!   tested cycle- and byte-identical against each other
//!   (`tests/properties.rs`, `tests/token_storm.rs`).
//! * **Block-fired compute nodes.** A replicated node holds up to `R`
//!   ready operand sets per cycle, all executing the *same static
//!   operation* — the paper's premise, and what makes block execution
//!   legal. When block firing is engaged ([`FireMode`]; auto-enabled at
//!   the same [`BATCH_MIN_REPLICATION`] threshold as delivery), a pure
//!   compute node (`Alu`/`Fpu`/`Special`/`Ctrl`/`Unary`/`Select`/`Join`/
//!   `Split`) drains its whole firing quota into reused SoA scratch and
//!   evaluates it in one tight loop with the `NodeKind` dispatch, the
//!   unit-class/latency lookup, the stat-counter increment and the
//!   `Obs::node_fire` upkeep hoisted out per block; results enter the
//!   delivery path through one batch append per out-edge instead of one
//!   `send` per token. Two invariants make this exact:
//!   - *Same-cycle readiness cannot change mid-block.* All deliveries
//!     due in a cycle complete (step 1 of the cycle loop) before any
//!     node fires (step 3), and every token a firing emits lands at
//!     `now + 1` or later — so the ready queue a node sees at its firing
//!     slot is frozen for the cycle, and draining `k` entries up front
//!     observes exactly the tokens the per-token loop would have popped
//!     one by one.
//!   - *The stall-requeue FIFO rule.* Memory, eLDST and elevator nodes
//!     keep the per-token path: a structural stall (MSHR or LDST queue
//!     full) can interrupt them mid-quota, and the stalled token is
//!     pushed back at the *front* of the ready queue, so the queue stays
//!     in FIFO order and the next cycle retries the same token first.
//!     Pure nodes can never stall, which is why only they block-fire —
//!     a drained block always completes.
//!
//!   Within one block, seqs are assigned edge-major instead of
//!   token-major; each per-edge stream still carries strictly ascending
//!   seqs in token order, and the whole block occupies the same
//!   contiguous seq range the per-token fire loop would have used, so
//!   every consumer's per-node merge (and therefore every output byte)
//!   is unchanged. Both paths are forceable (`DMT_BATCHED_FIRE=1` /
//!   `DMT_UNBATCHED_FIRE=1`, [`FabricMachine::with_modes`]) and the full
//!   fire × delivery mode grid is differentially tested byte-identical
//!   (`tests/properties.rs`, `tests/token_storm.rs`).
//!
//! Ring allocations are pooled per launch ([`StoreArena`]): a multi-phase
//! kernel re-initializes the previous phase's buffers instead of paying an
//! allocator round-trip per `PhaseExec`. Statistics are phase-resolved —
//! the counters are snapshotted at every phase boundary and the run's
//! totals are derived as the exact field-wise sum of the per-phase records
//! (see [`dmt_common::stats`]).

use crate::program::{FabricProgram, PhaseProgram};
use dmt_common::config::{SystemConfig, UnitClass, WritePolicy};
use dmt_common::ids::{Addr, NodeId};
use dmt_common::memimg::MemImage;
use dmt_common::sched::CalendarQueue;
use dmt_common::stats::{PhaseStats, RunStats};
use dmt_common::value::Word;
use dmt_common::{Error, Result, RunLimits};
use dmt_dfg::kernel::LaunchInput;
use dmt_dfg::node::{eval_pure, MemSpace, NodeKind};
use dmt_mem::{AccessOutcome, Lvc, MemSystem, Scratchpad};
use dmt_obs::{CycleSample, EdgeClass, Obs, StoreKind};
use std::collections::{HashMap, VecDeque};

/// Result of a fabric run: final memory image plus statistics.
#[derive(Debug, Clone)]
pub struct FabricRunResult {
    /// Final global-memory image.
    pub memory: MemImage,
    /// Event counters and total cycles.
    pub stats: RunStats,
}

/// Minimum program replication at which edge batching is engaged by
/// default. A batch carries at most `R` tokens (one fire per replica per
/// cycle, fixed per-edge hop delay), while its fixed overhead — slab
/// alloc/free, a calendar entry, the per-cycle grouping sort, and the
/// per-node seq merge — is roughly an order of magnitude more than one
/// bucket-wheel push. Measured on the smoke suite, batching loses ~10%
/// at R = 3–5 and wins clearly from R ≈ 8 up; below the threshold the
/// per-token path (identical results) is used.
pub const BATCH_MIN_REPLICATION: u32 = 8;

/// How tokens are scheduled for delivery (see the module docs; results
/// are byte-identical in every mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Batch when `replication ≥ BATCH_MIN_REPLICATION`, else per token.
    #[default]
    Auto,
    /// Always coalesce per-edge batches.
    Batched,
    /// Always schedule one calendar event per token (reference path).
    Unbatched,
}

impl DeliveryMode {
    /// Resolves the mode from `DMT_BATCHED_DELIVERY` /
    /// `DMT_UNBATCHED_DELIVERY` (the batched flag wins if both are set),
    /// defaulting to the profitability-gated [`DeliveryMode::Auto`].
    #[must_use]
    pub fn from_env() -> DeliveryMode {
        if env_flag("DMT_BATCHED_DELIVERY") {
            DeliveryMode::Batched
        } else if env_flag("DMT_UNBATCHED_DELIVERY") {
            DeliveryMode::Unbatched
        } else {
            DeliveryMode::Auto
        }
    }

    /// Whether this mode coalesces batches for a program of the given
    /// replication.
    #[must_use]
    pub fn batched_for(self, replication: u32) -> bool {
        match self {
            DeliveryMode::Batched => true,
            DeliveryMode::Unbatched => false,
            DeliveryMode::Auto => replication >= BATCH_MIN_REPLICATION,
        }
    }

    /// The stable artifact key for the path taken at `replication`
    /// (`"batched"` / `"per_token"` — what `bench_hotpath` records).
    #[must_use]
    pub fn key_for(self, replication: u32) -> &'static str {
        if self.batched_for(replication) {
            "batched"
        } else {
            "per_token"
        }
    }
}

/// How ready operand sets are fired (see the module docs; results are
/// byte-identical in every mode). Only pure compute nodes ever
/// block-fire — memory, eLDST and elevator nodes stay per-token in
/// every mode because they can stall mid-quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FireMode {
    /// Block-fire when `replication ≥ BATCH_MIN_REPLICATION`, else per
    /// token.
    #[default]
    Auto,
    /// Always block-fire pure compute nodes.
    Batched,
    /// Always fire one operation at a time (reference path).
    Unbatched,
}

impl FireMode {
    /// Resolves the mode from `DMT_BATCHED_FIRE` / `DMT_UNBATCHED_FIRE`
    /// (the batched flag wins if both are set), defaulting to the
    /// profitability-gated [`FireMode::Auto`].
    #[must_use]
    pub fn from_env() -> FireMode {
        if env_flag("DMT_BATCHED_FIRE") {
            FireMode::Batched
        } else if env_flag("DMT_UNBATCHED_FIRE") {
            FireMode::Unbatched
        } else {
            FireMode::Auto
        }
    }

    /// Whether this mode block-fires a program of the given replication.
    #[must_use]
    pub fn batched_for(self, replication: u32) -> bool {
        match self {
            FireMode::Batched => true,
            FireMode::Unbatched => false,
            FireMode::Auto => replication >= BATCH_MIN_REPLICATION,
        }
    }

    /// The stable artifact key for the path taken at `replication`
    /// (`"batched"` / `"per_token"` — what `bench_hotpath` records).
    #[must_use]
    pub fn key_for(self, replication: u32) -> &'static str {
        if self.batched_for(replication) {
            "batched"
        } else {
            "per_token"
        }
    }
}

/// The CGRA core simulator. Construct once per configuration and run
/// compiled programs on it.
///
/// # Examples
///
/// See the crate-level docs; programs are normally produced by
/// `dmt-compiler`.
#[derive(Debug, Clone)]
pub struct FabricMachine {
    cfg: SystemConfig,
    fire: FireMode,
    delivery: DeliveryMode,
}

impl FabricMachine {
    /// Creates a machine with the given configuration (Table 2 defaults via
    /// `SystemConfig::default()`).
    ///
    /// Delivery and firing default to the profitability-gated automatic
    /// modes; `DMT_BATCHED_DELIVERY=1` / `DMT_UNBATCHED_DELIVERY=1` and
    /// `DMT_BATCHED_FIRE=1` / `DMT_UNBATCHED_FIRE=1` force one path
    /// (the batched flag wins if both are set).
    #[must_use]
    pub fn new(cfg: SystemConfig) -> FabricMachine {
        FabricMachine::with_modes(cfg, FireMode::from_env(), DeliveryMode::from_env())
    }

    /// A machine with explicit fire and delivery modes, bypassing the
    /// environment knobs — what the mode-grid differential tests use.
    /// Outputs, statistics and cycle counts are identical across all
    /// mode combinations; only simulator wall-clock differs.
    #[must_use]
    pub fn with_modes(cfg: SystemConfig, fire: FireMode, delivery: DeliveryMode) -> FabricMachine {
        FabricMachine {
            cfg,
            fire,
            delivery,
        }
    }

    /// A machine that schedules one calendar event per token instead of
    /// coalescing per-edge batches — the reference delivery path the
    /// batched engine is differentially tested against (also reachable
    /// via `DMT_UNBATCHED_DELIVERY=1`). Firing still resolves from the
    /// environment; use [`FabricMachine::with_modes`] to pin both axes.
    #[must_use]
    pub fn with_unbatched_delivery(cfg: SystemConfig) -> FabricMachine {
        FabricMachine::with_modes(cfg, FireMode::from_env(), DeliveryMode::Unbatched)
    }

    /// A machine that always coalesces per-edge batches, regardless of
    /// the program's replication (also reachable via
    /// `DMT_BATCHED_DELIVERY=1`). Firing still resolves from the
    /// environment; use [`FabricMachine::with_modes`] to pin both axes.
    #[must_use]
    pub fn with_batched_delivery(cfg: SystemConfig) -> FabricMachine {
        FabricMachine::with_modes(cfg, FireMode::from_env(), DeliveryMode::Batched)
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Executes `program` on `input`, running grid blocks and phases
    /// sequentially on one core (the paper's per-core comparison).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Runtime`] for parameter mismatches or bad
    /// addresses, and [`Error::Deadlock`] when the fabric cannot make
    /// progress.
    pub fn run(&self, program: &FabricProgram, input: LaunchInput) -> Result<FabricRunResult> {
        self.run_observed(program, input, &mut Obs::disabled())
    }

    /// [`FabricMachine::run`] with an observation handle: the engine
    /// reports phase boundaries, node firings, per-edge tokens, spills
    /// and periodic counter samples into `obs`. Passing
    /// [`Obs::disabled`] (which [`FabricMachine::run`] does) reduces
    /// every report to one predicted-not-taken branch, so observed and
    /// unobserved runs produce identical results and statistics.
    ///
    /// # Errors
    ///
    /// As [`FabricMachine::run`].
    pub fn run_observed(
        &self,
        program: &FabricProgram,
        input: LaunchInput,
        obs: &mut Obs,
    ) -> Result<FabricRunResult> {
        self.run_limited(program, input, obs, &RunLimits::unlimited())
    }

    /// [`FabricMachine::run_observed`] under cooperative [`RunLimits`]:
    /// the cycle loop checks the deadline and cancellation token every
    /// cycle (`now` carries across phases, so the budget bounds the
    /// whole launch, reconfiguration gaps included). The unlimited
    /// check is one compare per cycle.
    ///
    /// # Errors
    ///
    /// As [`FabricMachine::run`], plus [`Error::TimedOut`] /
    /// [`Error::Cancelled`] when a limit trips.
    pub fn run_limited(
        &self,
        program: &FabricProgram,
        input: LaunchInput,
        obs: &mut Obs,
        limits: &RunLimits<'_>,
    ) -> Result<FabricRunResult> {
        if input.params.len() != program.param_count {
            return Err(Error::Runtime(format!(
                "program {} expects {} parameters, got {}",
                program.name,
                program.param_count,
                input.params.len()
            )));
        }
        let mut global = input.memory;
        let mut stats = RunStats::default();
        // The CGRA cores use write-back / write-allocate L1 (§5.1).
        let mut mem = MemSystem::new(&self.cfg.mem, WritePolicy::WriteBackAllocate);
        let mut lvc = Lvc::new(self.cfg.mem.lvc);
        let mut scratch = Scratchpad::new(self.cfg.mem.scratchpad);
        let mut now = 0u64;

        // Phase-major execution: the fabric is configured for phase p and
        // *every* block's threads stream through it back to back (blocks
        // are independent; a barrier only orders phases within one block,
        // and executing phase p of all blocks before phase p+1 of any
        // trivially satisfies it). Single-phase dMT kernels therefore
        // stream the entire launch with no drain at all — the paper's core
        // claim — while shared-memory kernels drain once per barrier.
        let mut shared_imgs: Vec<MemImage> = (0..program.grid_blocks)
            .map(|_| MemImage::with_words(program.shared_words as usize))
            .collect();
        // Ring allocations are pooled across phases (one allocation set
        // per launch, re-initialized per phase), and the counters are
        // snapshotted at every phase boundary so the run reports a
        // per-phase breakdown whose field-wise sum *is* the totals.
        let mut arena = StoreArena::default();
        let mut per_phase: Vec<PhaseStats> = Vec::with_capacity(program.phases.len());
        let mut prev = PhaseStats::default();
        for (pi, phase) in program.phases.iter().enumerate() {
            if pi > 0 {
                now += self.cfg.fabric.reconfiguration_cycles;
            }
            obs.phase_begin(pi as u32, now);
            let mut exec = PhaseExec::new(
                &self.cfg,
                program,
                phase,
                0,
                &input.params,
                now,
                program.grid_blocks,
                &mut arena,
                obs,
                self.fire,
                self.delivery,
            );
            now = exec.run(
                &mut global,
                &mut shared_imgs,
                &mut mem,
                &mut scratch,
                &mut lvc,
                &mut stats,
                limits,
            )?;
            exec.recycle(&mut arena);
            obs.phase_end(now);
            stats.phases += 1;
            let cum = cumulative_snapshot(&stats, now, &mem, &scratch, &lvc);
            per_phase.push(cum.minus(&prev));
            prev = cum;
        }
        obs.finish(now);
        Ok(FabricRunResult {
            memory: global,
            stats: RunStats::from_phases(per_phase),
        })
    }
}

/// True when the environment variable `name` is set to something other
/// than `""`, `"0"` or `"false"`.
fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
}

/// The run's cumulative counters at one instant: everything accumulated in
/// `stats` so far, plus the live cumulative state the flat accumulation
/// only exports at run end (cycles, bank conflicts, hierarchy counters,
/// LVC traffic). Differencing consecutive snapshots yields exact per-phase
/// shares, and the final snapshot is bit-identical to the whole-run totals
/// the pre-phase-resolved engine reported.
fn cumulative_snapshot(
    stats: &RunStats,
    now: u64,
    mem: &MemSystem,
    scratch: &Scratchpad,
    lvc: &Lvc,
) -> PhaseStats {
    let mut cum = stats.totals();
    cum.cycles = now;
    cum.shared_bank_conflicts = scratch.bank_conflicts;
    cum.lvc_reads = lvc.reads;
    cum.lvc_writes = lvc.writes;
    mem.export_phase(&mut cum);
    cum
}

/// Recycled matching-store / eLDST ring allocations, shared across the
/// phases of one launch: a multi-phase kernel re-initializes one pooled
/// allocation set per phase instead of allocating fresh rings in every
/// `PhaseExec` (clearing retained capacity is a memset; the allocator
/// round-trip is what the pool removes).
#[derive(Debug, Default)]
struct StoreArena {
    match_rings: Vec<Vec<MatchSlot>>,
    eldst_rings: Vec<Vec<EldstSlot>>,
    /// Cleared [`TokenBatch`]es with retained payload capacity, recycled
    /// across phases exactly like the rings.
    token_batches: Vec<TokenBatch>,
    /// Block-firing SoA scratch (tids + results), pooled likewise.
    fire_scratch: FireScratch,
}

/// SoA scratch a block firing drains its ready operand sets into: the
/// thread ids and, after the tight evaluation loop, the result words.
/// One instance lives on [`PhaseExec`] (pooled across phases via
/// [`StoreArena`]) and is reused by every block, so steady-state block
/// firing allocates nothing.
#[derive(Debug, Default)]
struct FireScratch {
    tids: Vec<u32>,
    vals: Vec<Word>,
}

impl StoreArena {
    /// A matching-store ring of exactly `size` empty slots, reusing a
    /// pooled allocation when one is available.
    fn match_ring(&mut self, size: usize) -> Vec<MatchSlot> {
        let mut ring = self.match_rings.pop().unwrap_or_default();
        ring.clear();
        ring.resize(size, MatchSlot::EMPTY);
        ring
    }

    /// An eLDST token-buffer ring of exactly `size` empty slots, ditto.
    fn eldst_ring(&mut self, size: usize) -> Vec<EldstSlot> {
        let mut ring = self.eldst_rings.pop().unwrap_or_default();
        ring.clear();
        ring.resize(size, EldstSlot::EMPTY);
        ring
    }
}

/// A token-delivery or bookkeeping event on the calendar queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// A token arrives at `node`'s matching store.
    Deliver {
        node: NodeId,
        port: u8,
        tid: u32,
        value: Word,
    },
    /// An eLDST output becomes architecturally visible: fan it out and
    /// offer the duplicate to the next thread in the window.
    EloadProduce { node: NodeId, tid: u32, value: Word },
    /// An eLDST duplicate token reaches the token buffer (after any
    /// Fig 10b loop latency): hand it to a parked consumer or buffer it.
    EloadOffer { node: NodeId, tid: u32, value: Word },
    /// A memory operation completed; release the unit's outstanding slot.
    Release { node: NodeId },
    /// A sink operation of `tid` completed.
    SinkDone { tid: u32 },
    /// A coalesced per-`(edge, cycle)` token batch is due: index into
    /// `PhaseExec::batches` (batched delivery only; never scheduled on
    /// the per-token reference path). Folding the reference into [`Ev`]
    /// keeps calendar entries at the per-token engine's 16 bytes.
    Batch { batch: u32 },
}

/// All tokens crossing one `(edge, arrival cycle)`, coalesced into a
/// single calendar entry with an SoA payload. `seqs` is strictly
/// ascending: tokens are appended in schedule order, which is what the
/// delivery merge relies on (see the module docs).
#[derive(Debug, Default)]
struct TokenBatch {
    /// Destination node of the edge.
    node: u32,
    /// Destination operand port of the edge.
    port: u8,
    seqs: Vec<u64>,
    tids: Vec<u32>,
    vals: Vec<Word>,
}

impl TokenBatch {
    fn clear(&mut self) {
        self.seqs.clear();
        self.tids.clear();
        self.vals.clear();
    }
}

/// One CSR out-edge: destination node/port and the precomputed arrival
/// delta (`noc_hop_latency · hops`) added to a producer's result cycle.
#[derive(Debug, Clone, Copy)]
struct EdgeOut {
    node: u32,
    port: u8,
    delta: u64,
}

/// Per-edge coalescing state: the batch currently accepting tokens for
/// the edge, valid only while `cycle` is still in the future. A consumed
/// batch's entry goes stale harmlessly — its `cycle` is in the past and
/// new arrivals always land at `now + 1` or later, so it can never match.
#[derive(Debug, Clone, Copy)]
struct OpenBatch {
    cycle: u64,
    batch: u32,
}

impl OpenBatch {
    const CLOSED: OpenBatch = OpenBatch {
        cycle: u64::MAX,
        batch: 0,
    };
}

/// A due batch's delivery cursor for one cycle's merge pass; the payload
/// stays in the slab and is read in place. `node` and `seq0` (the head
/// token's seq) are copied out at drain time so the grouping sort never
/// chases into the slab.
#[derive(Debug, Clone, Copy)]
struct DueCursor {
    id: u32,
    pos: u32,
    node: u32,
    seq0: u64,
}

/// Tag marking a matching-store or eLDST ring slot as free.
const EMPTY_TAG: u32 = u32::MAX;

/// One window-indexed matching-store slot: a partially assembled operand
/// set for thread `tag`. Unfilled ports read as zero when the set
/// completes (matching the old `Option`-based store's `unwrap_or(ZERO)`).
#[derive(Debug, Clone, Copy)]
struct MatchSlot {
    tag: u32,
    /// Bitmask of ports already received.
    filled: u8,
    ops: [Word; 3],
}

impl MatchSlot {
    const EMPTY: MatchSlot = MatchSlot {
        tag: EMPTY_TAG,
        filled: 0,
        ops: [Word::ZERO; 3],
    };
}

/// What an eLDST token-buffer entry holds for its thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EldstState {
    /// A duplicate value arrived before the thread fired.
    Fwd(Word),
    /// The thread fired with a false predicate and waits for its value.
    Parked,
}

/// One eLDST token-buffer slot (see [`EldstState`]); free when
/// `tag == EMPTY_TAG`.
#[derive(Debug, Clone, Copy)]
struct EldstSlot {
    tag: u32,
    state: EldstState,
}

impl EldstSlot {
    const EMPTY: EldstSlot = EldstSlot {
        tag: EMPTY_TAG,
        state: EldstState::Parked,
    };
}

/// Per-node firing invariants, precomputed once at phase load so the
/// fire paths stop re-matching `NodeKind` and re-reading
/// `cfg.latencies` per token: operand arity, the unit class that names
/// the stat counter, the result latency, and whether the node is pure
/// compute (eligible for block firing — it can never stall).
#[derive(Debug, Clone, Copy)]
struct FireMeta {
    /// Result latency (`now + latency` is the send base). Meaningful
    /// for pure nodes only; memory and communication nodes derive their
    /// timing inside their `fire_one` arms.
    latency: u64,
    /// Unit class for stat accounting ([`UnitClass::LoadStore`] for
    /// non-pure nodes, where it is never read).
    class: UnitClass,
    /// Operand arity (also the matching-store trigger: arity > 1).
    arity: u8,
    /// Pure compute (`Alu/Fpu/Special/Ctrl/Unary/Select/Join/Split`):
    /// evaluated by `eval_pure`, never blocked, block-firable. Note
    /// elevators are *not* pure despite `UnitClass::Control` — they
    /// re-tag tids and may touch the LVC.
    pure: bool,
}

/// The `RunStats` operation counter a unit class increments per firing
/// (hoisted per block on the batched path).
fn class_counter(stats: &mut RunStats, class: UnitClass) -> &mut u64 {
    match class {
        UnitClass::Alu => &mut stats.alu_ops,
        UnitClass::Fpu => &mut stats.fpu_ops,
        UnitClass::Special => &mut stats.special_ops,
        UnitClass::Control => &mut stats.control_ops,
        UnitClass::SplitJoin => &mut stats.sju_ops,
        UnitClass::LoadStore => unreachable!("pure compute classes only"),
    }
}

/// Per-node runtime state.
#[derive(Debug, Default)]
struct UnitState {
    /// Matching store: `tid & ring_mask`-indexed slots (empty for source
    /// nodes, which are injected, never delivered to). The allocation is
    /// pooled in a [`StoreArena`] across the launch's phases.
    pending: Vec<MatchSlot>,
    /// Matching-store spill for tids whose ring slot is held by another
    /// live tid. Empty in steady state; see the module docs.
    spill: HashMap<u32, MatchSlot>,
    /// Complete operand sets awaiting their firing slot.
    ready: VecDeque<(u32, [Word; 3])>,
    /// eLDST token buffer: forwarded values / parked threads, ring-indexed
    /// like `pending` (allocated only for eLDST nodes, pooled likewise).
    eldst: Vec<EldstSlot>,
    /// eLDST spill, mirroring `spill`.
    eldst_spill: HashMap<u32, EldstSlot>,
    /// Outstanding memory operations (LDST occupancy).
    outstanding: u32,
}

struct PhaseExec<'a> {
    cfg: &'a SystemConfig,
    program: &'a FabricProgram,
    phase: &'a PhaseProgram,
    /// First block of this execution (streaming runs cover all blocks).
    block: u32,
    params: &'a [Word],
    /// Total threads executed by this PhaseExec (one block, or the whole
    /// launch when streaming).
    threads: u32,
    /// Threads per block — communication and thread coordinates are always
    /// block-local (§3.1: threads communicate within a thread block).
    block_threads: u32,
    units: Vec<UnitState>,
    /// Bitmask over nodes with at least one complete operand set; firing
    /// walks set bits in ascending node order.
    active: Vec<u64>,
    /// Per-node firing invariants (arity, class, latency, purity),
    /// precomputed at phase load (see [`FireMeta`]).
    meta: Vec<FireMeta>,
    /// `ring_size − 1` for the power-of-two matching-store rings.
    ring_mask: u32,
    events: CalendarQueue<Ev>,
    /// Global schedule sequence: one increment per *logical* event (each
    /// token and each bookkeeping event), batched or not. Doubles as the
    /// scheduled-event total the profile reports.
    seq: u64,
    /// Logical events handled so far; `seq − handled` is the pending
    /// logical depth the cycle samples report (token-denominated, so
    /// batching is invisible to the observability layer).
    handled: u64,
    /// Per-token reference delivery (no coalescing); see the module docs.
    unbatched: bool,
    /// Block-fire pure compute nodes (drain a node's ready block into
    /// [`FireScratch`] and evaluate it in one tight loop); see the
    /// module docs.
    batched_fire: bool,
    /// Block-firing SoA scratch, pooled across phases via [`StoreArena`].
    fire_scratch: FireScratch,
    /// `edge_base[n]` = id of node `n`'s first out-edge; edge `(n, i)`
    /// has id `edge_base[n] + i` (aligned with `graph.consumers(n)`).
    /// Carries an end sentinel: node `n`'s out-degree is
    /// `edge_base[n + 1] − edge_base[n]`.
    edge_base: Vec<u32>,
    /// Flat CSR out-edge payload, indexed by edge id (see `edge_base`).
    out_edges: Vec<EdgeOut>,
    /// Per-node Σ hops over out-edges (bulk NoC-hop accounting in `send`).
    hops_sum: Vec<u64>,
    /// Per-edge open batch (indexed by edge id).
    open: Vec<OpenBatch>,
    /// Batch slab; `Ev::Batch` holds indices into it. Payloads are read
    /// in place during delivery and cleared in place afterwards — no
    /// per-cycle moves.
    batches: Vec<TokenBatch>,
    /// Free slab slots (their payload capacity is retained in place).
    free_batches: Vec<u32>,
    /// Spare cleared batches (arena-pooled across phases).
    batch_pool: Vec<TokenBatch>,
    /// Per-cycle scratch: due batches with merge cursors.
    due_batches: Vec<DueCursor>,
    now: u64,
    next_inject: u32,
    retire_floor: u32,
    retired: Vec<bool>,
    sinks_done: Vec<u32>,
    sink_count: u32,
    retired_count: u32,
    /// Operand sets currently in `ready` queues (completion check).
    ready_total: u32,
    /// Threads currently parked at eLDST buffers (completion check).
    parked_total: u32,
    /// The run's observation handle (disabled on unobserved runs; every
    /// report degrades to one branch — see `dmt_obs`).
    obs: &'a mut Obs,
    source_nodes: Vec<NodeId>,
    /// Elevator nodes with their configuration: fallback constants are
    /// generated at thread injection (the controller tracks the TID stream,
    /// so window-start threads get their constant without waiting for any
    /// data token — essential for recurrent chains like Fig 6).
    elevator_nodes: Vec<(NodeId, dmt_dfg::node::CommConfig, Word)>,
}

impl<'a> PhaseExec<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cfg: &'a SystemConfig,
        program: &'a FabricProgram,
        phase: &'a PhaseProgram,
        block: u32,
        params: &'a [Word],
        start: u64,
        blocks_covered: u32,
        arena: &mut StoreArena,
        obs: &'a mut Obs,
        fire: FireMode,
        delivery: DeliveryMode,
    ) -> PhaseExec<'a> {
        let n = phase.graph.len();
        let threads = program.threads_per_block() * blocks_covered;
        let sink_count = phase
            .graph
            .node_ids()
            .filter(|&id| phase.graph.consumers(id).is_empty())
            .count() as u32;
        let source_nodes: Vec<NodeId> = phase
            .graph
            .node_ids()
            .filter(|&id| phase.graph.kind(id).is_source())
            .collect();
        let elevator_nodes: Vec<(NodeId, dmt_dfg::node::CommConfig, Word)> = phase
            .graph
            .node_ids()
            .filter_map(|id| match *phase.graph.kind(id) {
                NodeKind::Elevator { comm, fallback } => Some((id, comm, fallback)),
                _ => None,
            })
            .collect();
        // Ring sizing: live tids are bounded by the in-flight window (or
        // the whole launch when smaller), stretched by re-tagging — an
        // elevator/eLDST chain can hold a stale tid's state alive while
        // threads up to Σ|shift| further on retire. 2Σ covers a chain's
        // worth of slack on both sides; the spill map covers anything
        // beyond (see the module docs).
        let shift_sum: u64 = phase
            .graph
            .node_ids()
            .map(|id| match *phase.graph.kind(id) {
                NodeKind::Elevator { comm, .. } | NodeKind::ELoad { comm, .. } => {
                    comm.shift.unsigned_abs()
                }
                _ => 0,
            })
            .sum();
        let live_bound = u64::from(cfg.fabric.inflight_threads.min(threads).max(1)) + 2 * shift_sum;
        let ring_size = live_bound.next_power_of_two().min(1 << 20) as usize;
        let lat = &cfg.latencies;
        let meta: Vec<FireMeta> = phase
            .graph
            .node_ids()
            .map(|id| {
                let kind = phase.graph.kind(id);
                let pure = matches!(
                    kind,
                    NodeKind::Alu(_)
                        | NodeKind::Fpu(_)
                        | NodeKind::Special(_)
                        | NodeKind::Ctrl(_)
                        | NodeKind::Unary(_)
                        | NodeKind::Select
                        | NodeKind::Join
                        | NodeKind::Split
                );
                let (latency, class) = if pure {
                    let class = kind.unit_class().expect("compute node");
                    let latency = match class {
                        UnitClass::Alu => lat.alu,
                        UnitClass::Fpu => lat.fpu,
                        UnitClass::Special => lat.special,
                        UnitClass::Control => lat.control,
                        UnitClass::SplitJoin => lat.sju,
                        UnitClass::LoadStore => unreachable!("pure nodes are not load/store"),
                    };
                    (latency, class)
                } else {
                    (0, UnitClass::LoadStore)
                };
                FireMeta {
                    latency,
                    class,
                    arity: kind.arity() as u8,
                    pure,
                }
            })
            .collect();
        let mut units = Vec::with_capacity(n);
        for id in phase.graph.node_ids() {
            // Single-operand nodes never match: a token is an operand set
            // by itself, so delivery bypasses the ring (see
            // `deliver_into`) and no ring is allocated.
            let needs_store = meta[id.index()].arity > 1;
            let is_eldst = matches!(phase.graph.kind(id), NodeKind::ELoad { .. });
            units.push(UnitState {
                pending: if needs_store {
                    arena.match_ring(ring_size)
                } else {
                    Vec::new()
                },
                eldst: if is_eldst {
                    arena.eldst_ring(ring_size)
                } else {
                    Vec::new()
                },
                ..UnitState::default()
            });
        }
        // Edge ids: a prefix sum over out-degrees (with an end sentinel),
        // so the per-edge tables are flat arrays indexed in O(1) from
        // `send`. `out_edges` is the CSR payload: destination, port, and
        // the edge's precomputed arrival delta (hop latency already
        // multiplied in), replacing two nested-`Vec` derefs and a multiply
        // per token on the hot send path.
        let mut edge_base = Vec::with_capacity(n + 1);
        let mut edges = 0u32;
        for id in phase.graph.node_ids() {
            edge_base.push(edges);
            edges += phase.graph.consumers(id).len() as u32;
        }
        edge_base.push(edges);
        let mut out_edges = Vec::with_capacity(edges as usize);
        let mut hops_sum = Vec::with_capacity(n);
        for id in phase.graph.node_ids() {
            let row = &phase.edge_hops[id.index()];
            hops_sum.push(row.iter().sum());
            for (i, &(consumer, port)) in phase.graph.consumers(id).iter().enumerate() {
                out_edges.push(EdgeOut {
                    node: consumer.0,
                    port: port.0,
                    delta: cfg.fabric.noc_hop_latency * row[i],
                });
            }
        }
        PhaseExec {
            cfg,
            program,
            phase,
            block,
            params,
            threads,
            block_threads: program.threads_per_block(),
            units,
            active: vec![0u64; n.div_ceil(64)],
            meta,
            ring_mask: (ring_size - 1) as u32,
            events: CalendarQueue::new(),
            seq: 0,
            handled: 0,
            // Batching only amortizes its overhead when batches are deep
            // enough (≤ R tokens each — a producer fires at most R ops
            // per cycle and an edge's hop delay is fixed); below the
            // threshold the per-token path delivers identical results
            // faster. See `BATCH_MIN_REPLICATION`.
            unbatched: match delivery {
                DeliveryMode::Batched => false,
                DeliveryMode::Unbatched => true,
                DeliveryMode::Auto => program.replication < BATCH_MIN_REPLICATION,
            },
            // Block firing amortizes the same way delivery batching does
            // (a ready block is at most R deep), so it shares the same
            // profitability threshold.
            batched_fire: fire.batched_for(program.replication),
            fire_scratch: std::mem::take(&mut arena.fire_scratch),
            edge_base,
            out_edges,
            hops_sum,
            open: vec![OpenBatch::CLOSED; edges as usize],
            batches: Vec::new(),
            free_batches: Vec::new(),
            batch_pool: std::mem::take(&mut arena.token_batches),
            due_batches: Vec::new(),
            now: start,
            next_inject: 0,
            retire_floor: 0,
            retired: vec![false; threads as usize],
            sinks_done: vec![0; threads as usize],
            sink_count,
            retired_count: 0,
            ready_total: 0,
            parked_total: 0,
            obs,
            source_nodes,
            elevator_nodes,
        }
    }

    fn schedule(&mut self, at: u64, ev: Ev) {
        // Nothing lands in the cycle that scheduled it: tokens cross at
        // least one pipeline boundary.
        self.seq += 1;
        self.events.schedule(at.max(self.now + 1), ev);
    }

    /// A batch slab slot for the given destination, reusing payload
    /// capacity from the free list or the arena pool.
    fn alloc_batch(&mut self, node: u32, port: u8) -> u32 {
        let id = match self.free_batches.pop() {
            Some(id) => id,
            None => {
                let id = self.batches.len() as u32;
                self.batches.push(self.batch_pool.pop().unwrap_or_default());
                id
            }
        };
        let b = &mut self.batches[id as usize];
        debug_assert!(b.seqs.is_empty(), "allocated batch not cleared");
        b.node = node;
        b.port = port;
        id
    }

    /// Fans `value` out from `node` to all consumers, booking NoC hops.
    /// `base` is the cycle the producing unit's result is available.
    ///
    /// Each token appends to its edge's open batch when one is already
    /// headed for the same arrival cycle; otherwise a fresh batch opens
    /// and a single calendar entry is scheduled for the whole coalesced
    /// payload. An edge can legitimately have several batches due at one
    /// cycle (arrival times are not monotonic on load edges); the
    /// delivery merge orders them by seq.
    fn send(&mut self, node: NodeId, tid: u32, value: Word, base: u64, stats: &mut RunStats) {
        let ix = node.index();
        let first = self.edge_base[ix] as usize;
        let last = self.edge_base[ix + 1] as usize;
        if first == last {
            self.schedule(base, Ev::SinkDone { tid });
            return;
        }
        stats.tokens_routed += (last - first) as u64;
        stats.noc_hops += self.hops_sum[ix];
        if self.obs.on() {
            // Edges are classified by their producer: elevator and eLDST
            // outputs are the paper's inter-thread channels, everything
            // else is ordinary dataflow. Unobserved runs pay one branch.
            let class = match self.phase.graph.kind(node) {
                NodeKind::Elevator { .. } => EdgeClass::Elevator,
                NodeKind::ELoad { .. } => EdgeClass::Eldst,
                _ => EdgeClass::Direct,
            };
            for eid in first..last {
                self.obs.edge_token(class, node.0, self.out_edges[eid].node);
            }
        }
        for eid in first..last {
            let e = self.out_edges[eid];
            let arrival = (base + e.delta).max(self.now + 1);
            self.seq += 1;
            if self.unbatched {
                self.events.schedule(
                    arrival,
                    Ev::Deliver {
                        node: NodeId(e.node),
                        port: e.port,
                        tid,
                        value,
                    },
                );
                continue;
            }
            let slot = self.open[eid];
            let id = if slot.cycle == arrival {
                slot.batch
            } else {
                let id = self.alloc_batch(e.node, e.port);
                self.open[eid] = OpenBatch {
                    cycle: arrival,
                    batch: id,
                };
                self.events.schedule(arrival, Ev::Batch { batch: id });
                id
            };
            let b = &mut self.batches[id as usize];
            b.seqs.push(self.seq);
            b.tids.push(tid);
            b.vals.push(value);
        }
    }

    fn source_value(&self, kind: &NodeKind, tid: u32) -> Word {
        match *kind {
            NodeKind::Const(w) => w,
            NodeKind::ThreadIdx(dim) => Word::from_u32(
                self.program
                    .block
                    .coord(dmt_common::ids::ThreadId(tid % self.block_threads), dim),
            ),
            NodeKind::BlockIdx => Word::from_u32(self.block + tid / self.block_threads),
            NodeKind::Param(slot) => self.params[usize::from(slot)],
            ref other => unreachable!("not a source: {other}"),
        }
    }

    /// Block-local communication: the sender of `tid`'s token, or `None`
    /// at window/block boundaries. Streaming runs carry several blocks in
    /// one tid space; communication never crosses a block.
    fn comm_source(&self, comm: &dmt_dfg::node::CommConfig, tid: u32) -> Option<u32> {
        let local = tid % self.block_threads;
        comm.source_of(local, self.block_threads)
            .map(|src_local| tid - local + src_local)
    }

    /// Block-local communication: the receiver of `tid`'s token.
    fn comm_target(&self, comm: &dmt_dfg::node::CommConfig, tid: u32) -> Option<u32> {
        let local = tid % self.block_threads;
        comm.target_of(local, self.block_threads)
            .map(|dst_local| tid - local + dst_local)
    }

    /// In-flight memory operations a (replicated) LDST node may hold: one
    /// request queue per physical replica.
    fn outstanding_cap(&self) -> u32 {
        self.cfg.fabric.ldst_queue_entries * self.program.replication.max(1)
    }

    fn can_inject(&self) -> bool {
        self.next_inject < self.threads
            && self.next_inject < self.retire_floor + self.cfg.fabric.inflight_threads
    }

    fn inject(&mut self, stats: &mut RunStats) {
        // One injector per graph replica (§3): R threads enter per cycle.
        let per_cycle = self.cfg.fabric.threads_injected_per_cycle * self.program.replication;
        // Both injection bounds depend only on `next_inject` (the retire
        // floor moves during delivery, not here), so the cycle's intake
        // is a contiguous tid block known up front.
        let cap = (self.retire_floor + self.cfg.fabric.inflight_threads).min(self.threads);
        let count = per_cycle.min(cap.saturating_sub(self.next_inject));
        if count == 0 {
            return;
        }
        let t0 = self.next_inject;
        self.next_inject += count;
        if count > 1 {
            return self.inject_block(t0, count, stats);
        }
        let tid = t0;
        for i in 0..self.source_nodes.len() {
            let node = self.source_nodes[i];
            let v = self.source_value(self.phase.graph.kind(node), tid);
            self.send(node, tid, v, self.now, stats);
        }
        // Elevator fallback constants for threads with no in-window
        // producer: generated from the TID stream at injection.
        for i in 0..self.elevator_nodes.len() {
            let (node, comm, fallback) = self.elevator_nodes[i];
            if self.comm_source(&comm, tid).is_none() {
                stats.elevator_const_tokens += 1;
                self.send(
                    node,
                    tid,
                    fallback,
                    self.now + self.cfg.latencies.elevator,
                    stats,
                );
            }
        }
    }

    /// [`PhaseExec::inject`] for a whole intake block: each source node
    /// fans its `count` tokens out through one [`PhaseExec::send_block`]
    /// instead of `count` per-thread [`PhaseExec::send`] calls, hoisting
    /// the `NodeKind` lookup, edge walk, stat upkeep, and observer report
    /// out of the thread loop. Reordering thread-major injection into
    /// source-major blocks is output-invariant: source nodes own disjoint
    /// out-edges, every per-edge stream stays ascending in tid, and each
    /// consumer's completion order follows its last-arriving port's
    /// stream — the same commutation argument the module docs make for
    /// block-fired compute nodes.
    fn inject_block(&mut self, t0: u32, count: u32, stats: &mut RunStats) {
        let mut scratch = std::mem::take(&mut self.fire_scratch);
        scratch.tids.clear();
        scratch.tids.extend(t0..t0 + count);
        for i in 0..self.source_nodes.len() {
            let node = self.source_nodes[i];
            scratch.vals.clear();
            let kind = self.phase.graph.kind(node);
            for tid in t0..t0 + count {
                scratch.vals.push(self.source_value(kind, tid));
            }
            self.send_block(
                node,
                EdgeClass::Direct,
                &scratch.tids,
                &scratch.vals,
                self.now,
                stats,
            );
        }
        for i in 0..self.elevator_nodes.len() {
            let (node, comm, fallback) = self.elevator_nodes[i];
            scratch.tids.clear();
            scratch.vals.clear();
            for tid in t0..t0 + count {
                if self.comm_source(&comm, tid).is_none() {
                    scratch.tids.push(tid);
                    scratch.vals.push(fallback);
                }
            }
            if !scratch.tids.is_empty() {
                stats.elevator_const_tokens += scratch.tids.len() as u64;
                self.send_block(
                    node,
                    EdgeClass::Elevator,
                    &scratch.tids,
                    &scratch.vals,
                    self.now + self.cfg.latencies.elevator,
                    stats,
                );
            }
        }
        self.fire_scratch = scratch;
    }

    /// Marks `node` as having a complete operand set ready to fire.
    #[inline]
    fn mark_active(&mut self, ix: usize) {
        self.active[ix / 64] |= 1 << (ix % 64);
    }

    fn deliver(&mut self, node: NodeId, port: u8, tid: u32, value: Word, stats: &mut RunStats) {
        stats.token_buffer_writes += 1;
        let ix = node.index();
        if deliver_into(
            &mut self.units[ix],
            self.obs,
            self.meta[ix].arity,
            self.ring_mask,
            self.now,
            node.0,
            port,
            tid,
            value,
        ) {
            self.ready_total += 1;
            self.mark_active(ix);
        }
    }

    /// Delivers a run of one batch's tokens — `pos` up to (exclusive) the
    /// first seq ≥ `limit` — with the unit borrow, arity, and ring mask
    /// hoisted out of the per-token loop. Returns the new cursor.
    fn deliver_batch_run(
        &mut self,
        id: u32,
        mut pos: usize,
        limit: u64,
        stats: &mut RunStats,
    ) -> usize {
        let b = &self.batches[id as usize];
        let ix = b.node as usize;
        let port = b.port;
        let arity = self.meta[ix].arity;
        let mask = self.ring_mask;
        let now = self.now;
        let len = b.tids.len();
        let unit = &mut self.units[ix];
        let obs = &mut *self.obs;
        let start = pos;
        let mut completed = 0u32;
        if limit == u64::MAX {
            // Whole-batch sweep (no competing stream): seqs untouched.
            while pos < len {
                completed += u32::from(deliver_into(
                    unit,
                    obs,
                    arity,
                    mask,
                    now,
                    b.node,
                    port,
                    b.tids[pos],
                    b.vals[pos],
                ));
                pos += 1;
            }
        } else {
            while pos < len && b.seqs[pos] < limit {
                completed += u32::from(deliver_into(
                    unit,
                    obs,
                    arity,
                    mask,
                    now,
                    b.node,
                    port,
                    b.tids[pos],
                    b.vals[pos],
                ));
                pos += 1;
            }
        }
        stats.token_buffer_writes += (pos - start) as u64;
        if completed > 0 {
            self.ready_total += completed;
            self.mark_active(ix);
        }
        pos
    }

    /// Delivers every batch due this cycle, restoring per-node schedule
    /// order: batches are grouped by destination node and each group's
    /// streams are merged by ascending seq (deliveries to different nodes
    /// commute — see the module docs). The common case — one due batch
    /// per node — is a straight SoA sweep with no merge at all.
    fn deliver_due(&mut self, due: &mut [DueCursor], stats: &mut RunStats) {
        if due.len() > 1 {
            due.sort_unstable_by_key(|c| (c.node, c.seq0));
        }
        let mut i = 0;
        while i < due.len() {
            let node = due[i].node;
            let mut j = i + 1;
            while j < due.len() && due[j].node == node {
                j += 1;
            }
            if j - i == 1 {
                self.deliver_batch_run(due[i].id, 0, u64::MAX, stats);
            } else {
                self.deliver_merged(&mut due[i..j], stats);
            }
            i = j;
        }
    }

    /// Merges one node's due in-edge batches by seq: repeatedly run the
    /// stream with the earliest head token up to the runner-up's head.
    /// Groups are bounded by the node's in-degree (operand arity ≤ 3), so
    /// a linear min scan beats any heap.
    fn deliver_merged(&mut self, group: &mut [DueCursor], stats: &mut RunStats) {
        loop {
            let mut best = usize::MAX;
            let mut best_seq = u64::MAX;
            let mut limit = u64::MAX;
            for (k, c) in group.iter().enumerate() {
                let b = &self.batches[c.id as usize];
                if let Some(&s) = b.seqs.get(c.pos as usize) {
                    if s < best_seq {
                        limit = best_seq;
                        best_seq = s;
                        best = k;
                    } else {
                        limit = limit.min(s);
                    }
                }
            }
            if best == usize::MAX {
                return;
            }
            let (id, pos) = (group[best].id, group[best].pos as usize);
            group[best].pos = self.deliver_batch_run(id, pos, limit, stats) as u32;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fire_all(
        &mut self,
        global: &mut MemImage,
        shared_imgs: &mut [MemImage],
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        lvc: &mut Lvc,
        stats: &mut RunStats,
    ) -> Result<()> {
        let mut any_blocked = false;
        // Each node exists once per graph replica, so it fires up to R
        // operations per cycle.
        let fires_per_cycle = self.program.replication.max(1);
        // Walk only nodes with ready operand sets, in ascending node order
        // (identical to the full scan this replaces). Firing never makes
        // another node ready in the same cycle — every send lands at
        // `now + 1` or later — so iterating a per-word snapshot is exact.
        for w in 0..self.active.len() {
            let mut word = self.active[w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let ix = w * 64 + bit;
                let node = NodeId(ix as u32);
                let meta = self.meta[ix];
                if self.batched_fire && meta.pure {
                    // Pure compute never stalls: the whole quota-bounded
                    // block fires in one tight loop with dispatch,
                    // latency, stat and obs upkeep hoisted out (see the
                    // module docs).
                    let count = self.units[ix].ready.len().min(fires_per_cycle as usize);
                    self.fire_block(node, ix, count, meta, stats);
                    self.ready_total -= count as u32;
                    self.obs.node_fires(node.0, count as u64);
                } else {
                    for _ in 0..fires_per_cycle {
                        let Some((tid, ops)) = self.units[ix].ready.pop_front() else {
                            break;
                        };
                        match self.fire_one(
                            node,
                            tid,
                            ops,
                            global,
                            shared_imgs,
                            mem,
                            scratch,
                            lvc,
                            stats,
                        )? {
                            Fired::Done => {
                                self.ready_total -= 1;
                                self.obs.node_fire(node.0);
                            }
                            Fired::Blocked => {
                                // Structural stall: retry the same token
                                // next cycle (FIFO: back at the front, so
                                // the undrained tail keeps its order).
                                self.units[ix].ready.push_front((tid, ops));
                                any_blocked = true;
                                break;
                            }
                        }
                    }
                }
                if self.units[ix].ready.is_empty() {
                    self.active[w] &= !(1u64 << bit);
                }
            }
        }
        if any_blocked {
            stats.backpressure_cycles += 1;
        }
        Ok(())
    }

    /// Fires `count` ready operand sets of a pure compute node as one
    /// block: drain into the SoA scratch, evaluate in a tight loop with
    /// the `NodeKind` dispatch hoisted, bump the class counter once, and
    /// hand the whole result vector to [`PhaseExec::send_block`]. The
    /// caller guarantees `meta.pure` (the block can never stall) and
    /// `count ≤ ready.len()`.
    fn fire_block(
        &mut self,
        node: NodeId,
        ix: usize,
        count: usize,
        meta: FireMeta,
        stats: &mut RunStats,
    ) {
        let mut scratch = std::mem::take(&mut self.fire_scratch);
        scratch.tids.clear();
        scratch.vals.clear();
        scratch.tids.reserve(count);
        scratch.vals.reserve(count);
        // Borrowed at the phase lifetime (not `&self`) so the drain loop
        // below can hold `&mut self.units[ix]` concurrently.
        let kind: &'a NodeKind = self.phase.graph.kind(node);
        let arity = usize::from(meta.arity);
        let unit = &mut self.units[ix];
        for _ in 0..count {
            let (tid, ops) = unit.ready.pop_front().expect("caller bounded count");
            scratch.tids.push(tid);
            scratch.vals.push(eval_pure(kind, &ops[..arity]));
        }
        *class_counter(stats, meta.class) += count as u64;
        // Block-fired nodes are pure compute, hence ordinary dataflow
        // edges (elevators and eLDSTs never block-fire).
        self.send_block(
            node,
            EdgeClass::Direct,
            &scratch.tids,
            &scratch.vals,
            self.now + meta.latency,
            stats,
        );
        self.fire_scratch = scratch;
    }

    /// [`PhaseExec::send`] for a whole result block: fans every
    /// `(tids[i], vals[i])` token out from `node`, with the edge walk
    /// hoisted outside the token loop (edge-major). Per-edge streams stay
    /// strictly ascending in seq and all tokens share one arrival cycle
    /// per edge, so on the batched delivery path each out-edge costs one
    /// open-batch probe and one bulk append; results are byte-identical
    /// to `count` per-token sends (see the module docs for the seq
    /// commutation argument).
    fn send_block(
        &mut self,
        node: NodeId,
        class: EdgeClass,
        tids: &[u32],
        vals: &[Word],
        base: u64,
        stats: &mut RunStats,
    ) {
        let ix = node.index();
        let first = self.edge_base[ix] as usize;
        let last = self.edge_base[ix + 1] as usize;
        let count = tids.len();
        if first == last {
            let at = base.max(self.now + 1);
            for &tid in tids {
                self.seq += 1;
                self.events.schedule(at, Ev::SinkDone { tid });
            }
            return;
        }
        stats.tokens_routed += ((last - first) * count) as u64;
        stats.noc_hops += self.hops_sum[ix] * count as u64;
        if self.obs.on() {
            for eid in first..last {
                self.obs
                    .edge_tokens(class, node.0, self.out_edges[eid].node, count as u64);
            }
        }
        for eid in first..last {
            let e = self.out_edges[eid];
            let arrival = (base + e.delta).max(self.now + 1);
            if self.unbatched {
                for i in 0..count {
                    self.seq += 1;
                    self.events.schedule(
                        arrival,
                        Ev::Deliver {
                            node: NodeId(e.node),
                            port: e.port,
                            tid: tids[i],
                            value: vals[i],
                        },
                    );
                }
                continue;
            }
            let slot = self.open[eid];
            let id = if slot.cycle == arrival {
                slot.batch
            } else {
                let id = self.alloc_batch(e.node, e.port);
                self.open[eid] = OpenBatch {
                    cycle: arrival,
                    batch: id,
                };
                self.events.schedule(arrival, Ev::Batch { batch: id });
                id
            };
            let b = &mut self.batches[id as usize];
            b.tids.extend_from_slice(tids);
            b.vals.extend_from_slice(vals);
            b.seqs.reserve(count);
            for _ in 0..count {
                self.seq += 1;
                b.seqs.push(self.seq);
            }
        }
    }

    /// Removes and returns thread `tid`'s eLDST token-buffer entry at node
    /// `ix`, following the same ring-then-spill discipline as the matching
    /// store.
    fn eldst_remove(&mut self, ix: usize, tid: u32) -> Option<EldstState> {
        let si = (tid & self.ring_mask) as usize;
        let unit = &mut self.units[ix];
        if unit.eldst[si].tag == tid {
            let state = unit.eldst[si].state;
            unit.eldst[si] = EldstSlot::EMPTY;
            self.obs.ring_free();
            return Some(state);
        }
        if unit.eldst_spill.is_empty() {
            None
        } else {
            unit.eldst_spill.remove(&tid).map(|s| s.state)
        }
    }

    /// Inserts an eLDST token-buffer entry for `tid` at node `ix` (ring
    /// slot when free, spill otherwise). The caller guarantees no entry
    /// for `tid` exists (remove-before-insert discipline), so a tid never
    /// holds both a ring slot and a spill entry.
    fn eldst_insert(&mut self, ix: usize, tid: u32, state: EldstState) {
        let si = (tid & self.ring_mask) as usize;
        let now = self.now;
        let unit = &mut self.units[ix];
        if unit.eldst[si].tag == EMPTY_TAG {
            unit.eldst[si] = EldstSlot { tag: tid, state };
            self.obs.ring_claim();
        } else {
            debug_assert_ne!(unit.eldst[si].tag, tid, "duplicate eLDST entry for {tid}");
            self.obs.spill(StoreKind::Eldst, now, ix as u32);
            unit.eldst_spill.insert(tid, EldstSlot { tag: tid, state });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fire_one(
        &mut self,
        node: NodeId,
        tid: u32,
        ops: [Word; 3],
        global: &mut MemImage,
        shared_imgs: &mut [MemImage],
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        lvc: &mut Lvc,
        stats: &mut RunStats,
    ) -> Result<Fired> {
        let lat = &self.cfg.latencies;
        // Borrowed from the phase program (lifetime `'a`, not `&self`), so
        // the match arms below can call `&mut self` methods — and firing
        // skips a `NodeKind` copy per operation.
        let kind: &'a NodeKind = self.phase.graph.kind(node);
        match *kind {
            NodeKind::Alu(_)
            | NodeKind::Fpu(_)
            | NodeKind::Special(_)
            | NodeKind::Ctrl(_)
            | NodeKind::Unary(_)
            | NodeKind::Select
            | NodeKind::Join
            | NodeKind::Split => {
                // Arity, class and latency come from the precomputed
                // per-node table — no `NodeKind` re-match or latency
                // re-read per token, batched or not.
                let meta = self.meta[node.index()];
                let value = eval_pure(kind, &ops[..usize::from(meta.arity)]);
                *class_counter(stats, meta.class) += 1;
                self.send(node, tid, value, self.now + meta.latency, stats);
                Ok(Fired::Done)
            }
            NodeKind::Load(space) => self.memory_load(
                node,
                tid,
                ops[0],
                space,
                global,
                shared_imgs,
                mem,
                scratch,
                stats,
            ),
            NodeKind::Store(space) => {
                if self.units[node.index()].outstanding >= self.outstanding_cap() {
                    return Ok(Fired::Blocked);
                }
                let addr = Addr(u64::from(ops[0].as_u32()));
                // Stores are fire-and-forget: the unit hands the request to
                // the memory system (which books bandwidth and may fill a
                // line in the background) and acknowledges as soon as it is
                // accepted — the same treatment the SIMT baseline gets.
                let ack = match space {
                    MemSpace::Global => match mem.store(addr, self.now + lat.ldst_issue) {
                        AccessOutcome::Done(_fill) => {
                            stats.global_stores += 1;
                            global.try_store(addr, ops[1])?;
                            self.now + lat.ldst_issue + 1
                        }
                        AccessOutcome::StallMshrFull => return Ok(Fired::Blocked),
                    },
                    MemSpace::Shared => {
                        stats.shared_stores += 1;
                        let b = (tid / self.block_threads) as usize;
                        shared_imgs[b].try_store(addr, ops[1])?;
                        scratch.access(addr, self.now + lat.ldst_issue)
                    }
                };
                self.units[node.index()].outstanding += 1;
                self.schedule(ack, Ev::Release { node });
                // The ordering token (or sink completion) appears at the
                // acknowledgement.
                self.send(node, tid, Word::ZERO, ack, stats);
                Ok(Fired::Done)
            }
            NodeKind::Elevator { comm, .. } => {
                stats.elevator_ops += 1;
                let spilled = self.phase.lvc_spilled.contains(&node);
                if let Some(dst) = self.comm_target(&comm, tid) {
                    let base = if spilled {
                        // Producer writes the LVC; consumer reads it back.
                        let slot = Addr(u64::from(dst % self.cfg.mem.lvc.entries) * 4);
                        let written = lvc.write(slot, self.now + lat.elevator);
                        lvc.read(slot, written)
                    } else {
                        self.now + lat.elevator
                    };
                    self.send(node, dst, ops[0], base, stats);
                }
                // Fallback constants are generated at injection (see
                // `inject`), not here — a recurrent chain's first thread
                // must receive its constant before any input token exists.
                Ok(Fired::Done)
            }
            NodeKind::ELoad { comm, space } => {
                let enable = ops[1].as_bool();
                if enable {
                    let fired = self.memory_load_eld(
                        node,
                        tid,
                        ops[0],
                        space,
                        global,
                        shared_imgs,
                        mem,
                        scratch,
                        stats,
                    )?;
                    return Ok(fired);
                }
                let Some(_) = self.comm_source(&comm, tid) else {
                    return Err(Error::Runtime(format!(
                        "eLDST {node}: thread {tid} has a false predicate but no in-window \
                         source thread"
                    )));
                };
                match self.eldst_remove(node.index(), tid) {
                    Some(EldstState::Fwd(v)) => {
                        stats.eldst_forwards += 1;
                        self.schedule(
                            self.now + lat.ldst_issue,
                            Ev::EloadProduce {
                                node,
                                tid,
                                value: v,
                            },
                        );
                    }
                    Some(EldstState::Parked) => unreachable!("thread {tid} fired twice"),
                    None => {
                        self.eldst_insert(node.index(), tid, EldstState::Parked);
                        self.parked_total += 1;
                    }
                }
                Ok(Fired::Done)
            }
            NodeKind::Const(_)
            | NodeKind::ThreadIdx(_)
            | NodeKind::BlockIdx
            | NodeKind::Param(_) => unreachable!("sources are injected, never fired"),
        }
    }

    /// Books and issues a plain load.
    #[allow(clippy::too_many_arguments)]
    fn memory_load(
        &mut self,
        node: NodeId,
        tid: u32,
        addr_w: Word,
        space: MemSpace,
        global: &mut MemImage,
        shared_imgs: &mut [MemImage],
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        stats: &mut RunStats,
    ) -> Result<Fired> {
        if self.units[node.index()].outstanding >= self.outstanding_cap() {
            return Ok(Fired::Blocked);
        }
        let addr = Addr(u64::from(addr_w.as_u32()));
        let issue = self.now + self.cfg.latencies.ldst_issue;
        let (value, done) = match space {
            MemSpace::Global => match mem.load(addr, issue) {
                AccessOutcome::Done(t) => {
                    stats.global_loads += 1;
                    (global.try_load(addr)?, t)
                }
                AccessOutcome::StallMshrFull => return Ok(Fired::Blocked),
            },
            MemSpace::Shared => {
                stats.shared_loads += 1;
                let b = (tid / self.block_threads) as usize;
                (shared_imgs[b].try_load(addr)?, scratch.access(addr, issue))
            }
        };
        self.units[node.index()].outstanding += 1;
        self.schedule(done, Ev::Release { node });
        self.send(node, tid, value, done, stats);
        Ok(Fired::Done)
    }

    /// Books and issues the loading half of an eLDST; the produced value is
    /// routed through [`Ev::EloadProduce`] so the duplicate token is offered
    /// to the next thread in the window.
    #[allow(clippy::too_many_arguments)]
    fn memory_load_eld(
        &mut self,
        node: NodeId,
        tid: u32,
        addr_w: Word,
        space: MemSpace,
        global: &mut MemImage,
        shared_imgs: &mut [MemImage],
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        stats: &mut RunStats,
    ) -> Result<Fired> {
        if self.units[node.index()].outstanding >= self.outstanding_cap() {
            return Ok(Fired::Blocked);
        }
        let addr = Addr(u64::from(addr_w.as_u32()));
        let issue = self.now + self.cfg.latencies.ldst_issue;
        let (value, done) = match space {
            MemSpace::Global => match mem.load(addr, issue) {
                AccessOutcome::Done(t) => {
                    stats.global_loads += 1;
                    (global.try_load(addr)?, t)
                }
                AccessOutcome::StallMshrFull => return Ok(Fired::Blocked),
            },
            MemSpace::Shared => {
                stats.shared_loads += 1;
                let b = (tid / self.block_threads) as usize;
                (shared_imgs[b].try_load(addr)?, scratch.access(addr, issue))
            }
        };
        self.units[node.index()].outstanding += 1;
        self.schedule(done, Ev::Release { node });
        self.schedule(done, Ev::EloadProduce { node, tid, value });
        Ok(Fired::Done)
    }

    /// Handles an eLDST output becoming visible: fan out downstream, then
    /// duplicate the token to `tid + shift` (§4.2), waking a parked thread
    /// if it is already waiting. Long-distance eLDSTs pay the Fig 10b
    /// elevator-loop latency (and LVC-spilled ones the spill round-trip) on
    /// the duplicate path.
    fn eload_produce(
        &mut self,
        node: NodeId,
        tid: u32,
        value: Word,
        lvc: &mut Lvc,
        stats: &mut RunStats,
    ) {
        self.send(node, tid, value, self.now, stats);
        let NodeKind::ELoad { comm, .. } = *self.phase.graph.kind(node) else {
            unreachable!("eload_produce on non-eLDST node");
        };
        if let Some(dst) = self.comm_target(&comm, tid) {
            let loop_latency = self
                .phase
                .eldst_loop_latency
                .get(&node)
                .copied()
                .unwrap_or(0);
            let offer_at = if self.phase.lvc_spilled.contains(&node) {
                let slot = Addr(u64::from(dst % self.cfg.mem.lvc.entries) * 4);
                let written = lvc.write(slot, self.now);
                lvc.read(slot, written)
            } else {
                self.now + self.cfg.latencies.ldst_issue + loop_latency
            };
            self.schedule(
                offer_at,
                Ev::EloadOffer {
                    node,
                    tid: dst,
                    value,
                },
            );
        }
    }

    /// The duplicate token lands in the eLDST token buffer.
    fn eload_offer(&mut self, node: NodeId, dst: u32, value: Word, stats: &mut RunStats) {
        stats.token_buffer_writes += 1;
        match self.eldst_remove(node.index(), dst) {
            Some(EldstState::Parked) => {
                self.parked_total -= 1;
                stats.eldst_forwards += 1;
                self.schedule(
                    self.now + self.cfg.latencies.ldst_issue,
                    Ev::EloadProduce {
                        node,
                        tid: dst,
                        value,
                    },
                );
            }
            other => {
                debug_assert!(other.is_none(), "duplicate eLDST offer for thread {dst}");
                self.eldst_insert(node.index(), dst, EldstState::Fwd(value));
            }
        }
    }

    fn sink_done(&mut self, tid: u32, stats: &mut RunStats) {
        let t = tid as usize;
        self.sinks_done[t] += 1;
        if self.sinks_done[t] == self.sink_count && !self.retired[t] {
            self.retired[t] = true;
            self.retired_count += 1;
            stats.threads_retired += 1;
            while (self.retire_floor as usize) < self.retired.len()
                && self.retired[self.retire_floor as usize]
            {
                self.retire_floor += 1;
            }
        }
    }

    fn complete(&self) -> bool {
        self.retired_count == self.threads
            && self.events.is_empty()
            && self.ready_total == 0
            && self.parked_total == 0
    }

    fn has_local_work(&self) -> bool {
        self.can_inject() || self.ready_total > 0
    }

    /// Parked tids at each node (deadlock diagnostics; cold path).
    fn parked_report(&self) -> Vec<String> {
        self.units
            .iter()
            .enumerate()
            .filter_map(|(i, u)| {
                let mut tids: Vec<u32> = u
                    .eldst
                    .iter()
                    .chain(u.eldst_spill.values())
                    .filter(|s| s.tag != EMPTY_TAG && s.state == EldstState::Parked)
                    .map(|s| s.tag)
                    .collect();
                if tids.is_empty() {
                    return None;
                }
                tids.sort_unstable();
                Some(format!("n{i} waiting for {tids:?}"))
            })
            .collect()
    }

    /// Returns this phase's ring allocations to the arena so the next
    /// phase reuses them (capacity is retained; contents are
    /// re-initialized on reuse — a drained phase may leave unconsumed
    /// eLDST forwards behind, so rings are not assumed clean).
    fn recycle(&mut self, arena: &mut StoreArena) {
        for unit in &mut self.units {
            if unit.pending.capacity() > 0 {
                arena.match_rings.push(std::mem::take(&mut unit.pending));
            }
            if unit.eldst.capacity() > 0 {
                arena.eldst_rings.push(std::mem::take(&mut unit.eldst));
            }
        }
        // Batch payload buffers ride the same pool (a drained phase has
        // consumed and cleared every batch, so slab entries are empty).
        arena.token_batches.append(&mut self.batch_pool);
        for mut b in self.batches.drain(..) {
            debug_assert!(b.seqs.is_empty(), "batch survived its phase");
            b.clear();
            arena.token_batches.push(b);
        }
        self.free_batches.clear();
        arena.fire_scratch = std::mem::take(&mut self.fire_scratch);
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        global: &mut MemImage,
        shared_imgs: &mut [MemImage],
        mem: &mut MemSystem,
        scratch: &mut Scratchpad,
        lvc: &mut Lvc,
        stats: &mut RunStats,
        limits: &RunLimits<'_>,
    ) -> Result<u64> {
        if self.sink_count == 0 {
            return Err(Error::Runtime(format!(
                "program {} phase has no sink nodes; threads can never retire",
                self.program.name
            )));
        }
        loop {
            // 0. Cooperative limits: deadline / cancellation, checked at
            // the cycle boundary so a timed-out run stops deterministically
            // at the same simulated cycle on every host.
            limits.check(self.now)?;
            // 1. Deliver everything due this cycle. Single (bookkeeping)
            // events run immediately in pop order — which is schedule
            // order among themselves — while token batches are set aside
            // and then merged back into per-node schedule order. The two
            // classes touch disjoint state and deliveries create no
            // events, so this matches the per-token engine byte for byte.
            self.events.advance(self.now);
            let mut due = std::mem::take(&mut self.due_batches);
            let mut handled = 0u64;
            while let Some(ev) = self.events.pop_due() {
                handled += 1;
                match ev {
                    Ev::Batch { batch } => {
                        handled -= 1; // counted per token when freed below
                        let b = &self.batches[batch as usize];
                        due.push(DueCursor {
                            id: batch,
                            pos: 0,
                            node: b.node,
                            seq0: b.seqs[0],
                        });
                    }
                    Ev::Deliver {
                        node,
                        port,
                        tid,
                        value,
                    } => self.deliver(node, port, tid, value, stats),
                    Ev::EloadProduce { node, tid, value } => {
                        self.eload_produce(node, tid, value, lvc, stats);
                    }
                    Ev::EloadOffer { node, tid, value } => {
                        self.eload_offer(node, tid, value, stats);
                    }
                    Ev::Release { node } => {
                        let u = &mut self.units[node.index()];
                        u.outstanding = u.outstanding.saturating_sub(1);
                    }
                    Ev::SinkDone { tid } => self.sink_done(tid, stats),
                }
            }
            self.handled += handled;
            if !due.is_empty() {
                self.deliver_due(&mut due, stats);
                for c in due.drain(..) {
                    let b = &mut self.batches[c.id as usize];
                    self.handled += b.seqs.len() as u64;
                    b.clear();
                    self.free_batches.push(c.id);
                }
            }
            self.due_batches = due;
            // 2. Inject new threads.
            self.inject(stats);
            // 3. Fire ready units (one op per unit per cycle).
            self.fire_all(global, shared_imgs, mem, scratch, lvc, stats)?;
            // 4. Done?
            if self.complete() {
                debug_assert_eq!(self.seq, self.handled, "logical events leaked");
                self.obs.calendar_scheduled(self.seq);
                return Ok(self.now);
            }
            // 5. Observe. Disabled handles reduce both calls to one
            // branch each; the counter gathering runs only at sample
            // boundaries of an enabled handle. Calendar depth counts
            // pending *logical* events (tokens, not batch entries), so
            // the profile and samples are identical with and without
            // edge batching.
            self.obs.calendar_depth(self.seq - self.handled);
            if self.obs.due(self.now) {
                let (l1_fills, l2_fills) = mem.fill_counts();
                let sample = CycleSample {
                    cycle: self.now,
                    injected: u64::from(self.next_inject),
                    retired: u64::from(self.retired_count),
                    calendar: self.seq - self.handled,
                    ready: u64::from(self.ready_total),
                    outstanding: self.units.iter().map(|u| u64::from(u.outstanding)).sum(),
                    l1_fills,
                    l2_fills,
                };
                self.obs.sample(sample);
            }
            // 6. Advance time.
            if self.has_local_work() {
                self.now += 1;
            } else if let Some(t) = self.events.next_time() {
                self.now = t;
            } else {
                let parked = self.parked_report();
                return Err(Error::Deadlock {
                    cycle: self.now,
                    detail: if parked.is_empty() {
                        format!(
                            "{} of {} threads retired, no events pending",
                            self.retired_count, self.threads
                        )
                    } else {
                        format!(
                            "eLDST threads parked without producers: {}",
                            parked.join("; ")
                        )
                    },
                });
            }
        }
    }
}

/// Writes one token into `unit`'s matching store and returns whether it
/// completed an operand set (pushed to `unit.ready`). A free function so
/// batch sweeps can hoist the unit borrow and per-node lookups out of
/// their token loop; `PhaseExec::deliver` wraps it for singles.
#[allow(clippy::too_many_arguments)]
#[inline]
fn deliver_into(
    unit: &mut UnitState,
    obs: &mut Obs,
    arity: u8,
    mask: u32,
    now: u64,
    node: u32,
    port: u8,
    tid: u32,
    value: Word,
) -> bool {
    debug_assert_ne!(tid, EMPTY_TAG, "tid collides with the empty-slot tag");
    if arity == 1 {
        // A single-operand token is a complete set by itself: the ring
        // claim/free pair would cancel before the next occupancy sample,
        // so the store is bypassed entirely (and never allocated).
        let mut ops = [Word::ZERO; 3];
        ops[port as usize] = value;
        unit.ready.push_back((tid, ops));
        return true;
    }
    let si = (tid & mask) as usize;
    // Resolve the slot for `tid`: its ring slot, its spill entry, or a
    // fresh claim (ring when free, spill when occupied by another tid).
    // A tid must never hold both a ring slot and a spill entry, so a
    // spilled tid is looked up before an empty ring slot is claimed.
    let ring_hit = unit.pending[si].tag == tid;
    let slot: &mut MatchSlot = if ring_hit {
        &mut unit.pending[si]
    } else if !unit.spill.is_empty() && unit.spill.contains_key(&tid) {
        unit.spill.get_mut(&tid).expect("present")
    } else if unit.pending[si].tag == EMPTY_TAG {
        obs.ring_claim();
        let s = &mut unit.pending[si];
        s.tag = tid;
        s
    } else {
        obs.spill(StoreKind::Match, now, node);
        unit.spill.entry(tid).or_insert(MatchSlot {
            tag: tid,
            ..MatchSlot::EMPTY
        })
    };
    debug_assert_eq!(slot.filled & (1 << port), 0, "duplicate operand");
    slot.filled |= 1 << port;
    slot.ops[port as usize] = value;
    if slot.filled.count_ones() == u32::from(arity) {
        let ops = slot.ops;
        if ring_hit || unit.pending[si].tag == tid {
            unit.pending[si] = MatchSlot::EMPTY;
            obs.ring_free();
        } else {
            unit.spill.remove(&tid);
        }
        unit.ready.push_back((tid, ops));
        return true;
    }
    false
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fired {
    Done,
    Blocked,
}
