//! The MT-CGRA / dMT-CGRA core: a cycle-level tagged-token dataflow
//! simulator.
//!
//! This crate models the paper's CGRA core (§4, Fig 7): a grid of
//! heterogeneous functional units joined by a statically-routed NoC, where
//! each unit matches dynamically tagged tokens (tag = thread id) and fires
//! following the dataflow rule. The two units the paper introduces —
//! **elevator nodes** (Fig 8) and **enhanced load/store (eLDST)** units
//! (Fig 9) — carry tokens *between* threads, implementing
//! `fromThreadOrConst` and `fromThreadOrMem`.
//!
//! [`machine::FabricMachine`] executes compiled [`program::FabricProgram`]s
//! (produced by `dmt-compiler`) against the shared memory hierarchy from
//! `dmt-mem`, and is functionally bit-identical to the reference
//! interpreter in `dmt-dfg::interp` — the test suites enforce it.
//!
//! # Examples
//!
//! ```
//! use dmt_fabric::machine::FabricMachine;
//! use dmt_fabric::testutil::naive_program;
//! use dmt_dfg::{KernelBuilder, LaunchInput};
//! use dmt_common::{SystemConfig, MemImage, Word};
//! use dmt_common::geom::{Delta, Dim3};
//! use dmt_common::ids::Addr;
//!
//! // result[tid] = in[tid] + in[tid-1] via an elevator node.
//! let mut kb = KernelBuilder::new("pair", Dim3::linear(8));
//! let inp = kb.param("in");
//! let out = kb.param("out");
//! let tid = kb.thread_idx(0);
//! let a = kb.index_addr(inp, tid, 4);
//! let x = kb.load_global(a);
//! let prev = kb.from_thread_or_const(x, Delta::new(-1), Word::from_i32(0), None);
//! let sum = kb.add_i(x, prev);
//! let oa = kb.index_addr(out, tid, 4);
//! kb.store_global(oa, sum);
//! let kernel = kb.finish()?;
//!
//! let mut mem = MemImage::with_words(16);
//! mem.write_i32_slice(Addr(0), &[1, 2, 3, 4, 5, 6, 7, 8]);
//! let machine = FabricMachine::new(SystemConfig::default());
//! let run = machine.run(
//!     &naive_program(&kernel, 12),
//!     LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(32)], mem),
//! )?;
//! assert_eq!(run.memory.read_i32_slice(Addr(32), 8), vec![1, 3, 5, 7, 9, 11, 13, 15]);
//! assert!(run.stats.cycles > 0);
//! # Ok::<(), dmt_common::Error>(())
//! ```

pub mod machine;
pub mod program;
#[doc(hidden)]
pub mod testutil;

pub use machine::{DeliveryMode, FabricMachine, FabricRunResult, FireMode, BATCH_MIN_REPLICATION};
pub use program::{Coord, FabricProgram, PhaseProgram};

#[cfg(test)]
mod tests {
    use crate::machine::FabricMachine;
    use crate::testutil::naive_program;
    use dmt_common::config::SystemConfig;
    use dmt_common::geom::{Delta, Dim3};
    use dmt_common::ids::Addr;
    use dmt_common::memimg::MemImage;
    use dmt_common::value::Word;
    use dmt_dfg::{interp, Kernel, KernelBuilder, LaunchInput};

    fn machine() -> FabricMachine {
        FabricMachine::new(SystemConfig::default())
    }

    /// Runs a kernel on both the interpreter and the fabric and checks the
    /// final memories agree word-for-word; returns fabric stats.
    fn differential(
        kernel: &Kernel,
        params: Vec<Word>,
        mem: MemImage,
    ) -> dmt_common::stats::RunStats {
        let oracle = interp::run_ref(kernel, &params, &mem).expect("interp ok");
        let run = machine()
            .run(&naive_program(kernel, 12), LaunchInput::new(params, mem))
            .expect("fabric ok");
        assert_eq!(
            run.memory, oracle.memory,
            "fabric memory diverges from the reference interpreter"
        );
        run.stats
    }

    #[test]
    fn elevator_neighbour_sum() {
        let n = 32u32;
        let mut kb = KernelBuilder::new("pair", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(inp, tid, 4);
        let x = kb.load_global(a);
        let prev = kb.from_thread_or_const(x, Delta::new(-1), Word::from_i32(0), None);
        let sum = kb.add_i(prev, x);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, sum);
        let kernel = kb.finish().unwrap();

        let mut mem = MemImage::with_words(2 * n as usize);
        let data: Vec<i32> = (0..n as i32).collect();
        mem.write_i32_slice(Addr(0), &data);
        let stats = differential(&kernel, vec![Word::from_u32(0), Word::from_u32(4 * n)], mem);
        assert_eq!(stats.threads_retired, u64::from(n));
        assert_eq!(stats.elevator_const_tokens, 1);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn bidirectional_elevators() {
        // out[t] = in[t-1] + in[t+1]: one positive and one negative delta.
        let n = 16u32;
        let mut kb = KernelBuilder::new("bidir", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(inp, tid, 4);
        let x = kb.load_global(a);
        let left = kb.from_thread_or_const(x, Delta::new(-1), Word::from_i32(0), None);
        let right = kb.from_thread_or_const(x, Delta::new(1), Word::from_i32(0), None);
        let sum = kb.add_i(left, right);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, sum);
        let kernel = kb.finish().unwrap();

        let mut mem = MemImage::with_words(2 * n as usize);
        let data: Vec<i32> = (1..=n as i32).collect();
        mem.write_i32_slice(Addr(0), &data);
        let stats = differential(&kernel, vec![Word::from_u32(0), Word::from_u32(4 * n)], mem);
        assert_eq!(stats.elevator_const_tokens, 2, "one per boundary");
    }

    #[test]
    fn eldst_forwards_memory_values() {
        // Every thread needs in[0]; only thread 0 loads it.
        let n = 16u32;
        let mut kb = KernelBuilder::new("bcast", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let zero = kb.const_i(0);
        let is_first = kb.eq_i(tid, zero);
        let v = kb.from_thread_or_mem(inp, is_first, Delta::new(-1), None);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, v);
        let kernel = kb.finish().unwrap();

        let mut mem = MemImage::with_words(1 + n as usize);
        mem.write_i32_slice(Addr(0), &[42]);
        let stats = differential(&kernel, vec![Word::from_u32(0), Word::from_u32(4)], mem);
        assert_eq!(stats.global_loads, 1, "one real load");
        assert_eq!(stats.eldst_forwards, u64::from(n - 1));
    }

    #[test]
    fn windowed_eldst_loads_once_per_group() {
        // Window of 4: thread 4k loads, the rest of its group forward.
        let n = 16u32;
        let win = 4u32;
        let mut kb = KernelBuilder::new("win_bcast", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let w = kb.const_i(win as i32);
        let lane = kb.rem_i(tid, w);
        let zero = kb.const_i(0);
        let is_leader = kb.eq_i(lane, zero);
        let group = kb.div_i(tid, w);
        let ga = kb.index_addr(inp, group, 4);
        let v = kb.from_thread_or_mem(ga, is_leader, Delta::new(-1), Some(win));
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, v);
        let kernel = kb.finish().unwrap();

        let mut mem = MemImage::with_words(4 + n as usize);
        mem.write_i32_slice(Addr(0), &[10, 20, 30, 40]);
        let stats = differential(&kernel, vec![Word::from_u32(0), Word::from_u32(16)], mem);
        assert_eq!(stats.global_loads, 4, "one load per window group");
        assert_eq!(stats.eldst_forwards, u64::from(n - 4));
    }

    #[test]
    fn two_phase_kernel_with_scratchpad() {
        // Phase 1: stage tid*2 into shared memory; phase 2: copy out.
        let n = 8u32;
        let mut kb = KernelBuilder::new("staged", Dim3::linear(n));
        kb.set_shared_words(n);
        let tid = kb.thread_idx(0);
        let two = kb.const_i(2);
        let v = kb.mul_i(tid, two);
        let z = kb.const_i(0);
        let sa = kb.index_addr(z, tid, 4);
        kb.store_shared(sa, v);
        kb.barrier();
        let tid2 = kb.thread_idx(0);
        let out = kb.param("out");
        let z2 = kb.const_i(0);
        let sa2 = kb.index_addr(z2, tid2, 4);
        let x = kb.load_shared(sa2);
        let oa = kb.index_addr(out, tid2, 4);
        kb.store_global(oa, x);
        let kernel = kb.finish().unwrap();

        let mem = MemImage::with_words(n as usize);
        let stats = differential(&kernel, vec![Word::from_u32(0)], mem);
        assert_eq!(stats.shared_stores, u64::from(n));
        assert_eq!(stats.shared_loads, u64::from(n));
        assert_eq!(stats.phases, 2);
    }

    #[test]
    fn deterministic_cycle_counts() {
        let n = 16u32;
        let mut kb = KernelBuilder::new("det", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(inp, tid, 4);
        let x = kb.load_global(a);
        let y = kb.add_i(x, x);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, y);
        let k = kb.finish().unwrap();

        let mk_mem = || {
            let mut m = MemImage::with_words(2 * n as usize);
            m.write_i32_slice(Addr(0), &(0..n as i32).collect::<Vec<_>>());
            m
        };
        let run = || {
            machine()
                .run(
                    &naive_program(&k, 12),
                    LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4 * n)], mk_mem()),
                )
                .unwrap()
                .stats
                .cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multi_block_launch() {
        let n = 8u32;
        let blocks = 4u32;
        let mut kb = KernelBuilder::new("blocks", Dim3::linear(n));
        kb.set_grid_blocks(blocks);
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let bdim = kb.const_i(n as i32);
        let base = kb.mul_i(bid, bdim);
        let gtid = kb.add_i(base, tid);
        let oa = kb.index_addr(out, gtid, 4);
        kb.store_global(oa, gtid);
        let kernel = kb.finish().unwrap();

        let mem = MemImage::with_words((n * blocks) as usize);
        let stats = differential(&kernel, vec![Word::from_u32(0)], mem);
        assert_eq!(stats.threads_retired, u64::from(n * blocks));
        assert_eq!(stats.global_stores, u64::from(n * blocks));
    }

    #[test]
    fn param_mismatch_is_error() {
        let mut kb = KernelBuilder::new("p", Dim3::linear(4));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        kb.store_global(out, tid);
        let kernel = kb.finish().unwrap();
        let r = machine().run(
            &naive_program(&kernel, 12),
            LaunchInput::new(vec![], MemImage::with_words(4)),
        );
        assert!(r.is_err());
    }

    #[test]
    fn store_conflict_detected_by_oracle_not_fabric_divergence() {
        // All threads store to address 0 — the interpreter flags the race.
        let mut kb = KernelBuilder::new("race", Dim3::linear(4));
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        kb.store_global(out, tid);
        let kernel = kb.finish().unwrap();
        let r = interp::run(
            &kernel,
            LaunchInput::new(vec![Word::from_u32(0)], MemImage::with_words(4)),
        );
        assert!(r.is_err(), "the oracle rejects racy kernels");
    }
}
