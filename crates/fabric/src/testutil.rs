//! Naive kernel → program lowering for tests and examples.
//!
//! This bypasses the real compiler (`dmt-compiler`): no capacity checks, no
//! cascading, no placement optimization — every node is dropped onto the
//! grid row-major. Useful for exercising the machine in isolation; real
//! users should compile with `dmt-compiler`.

use crate::program::{Coord, FabricProgram, PhaseProgram};
use dmt_dfg::Kernel;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Lowers a kernel with identity transforms and row-major placement on a
/// `width`-wide grid.
#[must_use]
pub fn naive_program(kernel: &Kernel, width: u32) -> FabricProgram {
    let phases = kernel
        .phases()
        .iter()
        .map(|g| {
            let placement: Vec<Coord> = g
                .node_ids()
                .map(|id| Coord {
                    x: id.0 % width,
                    y: id.0 / width,
                })
                .collect();
            let edge_hops = PhaseProgram::hops_from_placement(g, &placement);
            let mut unit_usage = BTreeMap::new();
            for id in g.node_ids() {
                if let Some(class) = g.kind(id).unit_class() {
                    *unit_usage.entry(class).or_insert(0) += 1;
                }
            }
            PhaseProgram {
                graph: g.clone(),
                placement,
                edge_hops,
                unit_usage,
                lvc_spilled: HashSet::new(),
                eldst_loop_latency: HashMap::new(),
            }
        })
        .collect();
    FabricProgram {
        name: kernel.name().to_owned(),
        block: kernel.block(),
        grid_blocks: kernel.grid_blocks(),
        param_count: kernel.param_names().len(),
        shared_words: kernel.shared_words(),
        replication: 1,
        phases,
    }
}
