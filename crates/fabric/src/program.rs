//! The fabric-program representation: a compiled kernel ready to execute on
//! the CGRA grid.
//!
//! A [`FabricProgram`] is produced by `dmt-compiler` and consumed by
//! [`crate::machine::FabricMachine`]. It carries the (possibly transformed —
//! elevator cascades inserted, spills marked) dataflow graphs, a physical
//! placement of each node onto grid coordinates, and the per-edge NoC hop
//! counts derived from that placement.

use dmt_common::config::UnitClass;
use dmt_common::geom::Dim3;
use dmt_common::ids::NodeId;
use dmt_dfg::Dfg;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// A position in the placement grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Coord {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

impl Coord {
    /// Manhattan distance to another coordinate — the NoC hop count between
    /// two units under dimension-ordered routing.
    #[must_use]
    pub fn manhattan(self, other: Coord) -> u64 {
        u64::from(self.x.abs_diff(other.x)) + u64::from(self.y.abs_diff(other.y))
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// One compiled, placed phase.
#[derive(Debug, Clone)]
pub struct PhaseProgram {
    /// The transformed dataflow graph (cascades inserted, fan-out splits
    /// added).
    pub graph: Dfg,
    /// Grid coordinate of every node (sources are placed with their first
    /// consumer; they are injected, not executed).
    pub placement: Vec<Coord>,
    /// `edge_hops[n][i]` = NoC hops for the i-th consumer edge of node `n`
    /// (aligned with `graph.consumers(n)`).
    pub edge_hops: Vec<Vec<u64>>,
    /// Units consumed per class (for reporting; the compiler has already
    /// verified capacity).
    pub unit_usage: BTreeMap<UnitClass, u32>,
    /// Elevator nodes the compiler demoted to Live-Value-Cache spills
    /// (ΔTID too large even for a full cascade, §4.3).
    pub lvc_spilled: HashSet<NodeId>,
    /// Extra forwarding latency for eLDST nodes whose ΔTID exceeds the
    /// token buffer: the compiler maps them onto a closed loop of cascaded
    /// elevator nodes enclosed by MUXes (Fig 10b), which the machine models
    /// as added latency on the duplicate-token path.
    pub eldst_loop_latency: HashMap<NodeId, u64>,
}

impl PhaseProgram {
    /// Computes `edge_hops` from a placement (minimum 1 hop per edge — even
    /// co-located units traverse their crossbar switch).
    #[must_use]
    pub fn hops_from_placement(graph: &Dfg, placement: &[Coord]) -> Vec<Vec<u64>> {
        graph
            .node_ids()
            .map(|n| {
                graph
                    .consumers(n)
                    .iter()
                    .map(|&(c, _)| placement[n.index()].manhattan(placement[c.index()]).max(1))
                    .collect()
            })
            .collect()
    }

    /// Total NoC hops if every edge carried one token (static route length).
    #[must_use]
    pub fn static_route_hops(&self) -> u64 {
        self.edge_hops.iter().flatten().sum()
    }
}

/// A fully compiled kernel: metadata plus one [`PhaseProgram`] per
/// barrier-delimited phase.
#[derive(Debug, Clone)]
pub struct FabricProgram {
    /// Kernel name (for reports).
    pub name: String,
    /// Thread-block shape.
    pub block: Dim3,
    /// Thread blocks in the launch grid.
    pub grid_blocks: u32,
    /// Declared parameter count.
    pub param_count: usize,
    /// Scratchpad words per block (baseline kernels).
    pub shared_words: u32,
    /// Dataflow-graph replication factor (§3: "the configuration consists
    /// of one or more replicas of the kernel's dataflow graph"): the grid
    /// holds this many copies, so this many threads inject — and each node
    /// fires this many operations — per cycle.
    pub replication: u32,
    /// Compiled phases.
    pub phases: Vec<PhaseProgram>,
}

impl FabricProgram {
    /// Threads per block.
    #[must_use]
    pub fn threads_per_block(&self) -> u32 {
        self.block.len()
    }

    /// Peak units consumed in any phase, per class.
    #[must_use]
    pub fn peak_unit_usage(&self) -> BTreeMap<UnitClass, u32> {
        let mut peak = BTreeMap::new();
        for phase in &self.phases {
            for (&class, &n) in &phase.unit_usage {
                let e = peak.entry(class).or_insert(0);
                *e = (*e).max(n);
            }
        }
        peak
    }
}

impl fmt::Display for FabricProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fabric program {} <<<{}, {}>>> ({} phases)",
            self.name,
            self.grid_blocks,
            self.block,
            self.phases.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_common::ids::PortIx;
    use dmt_common::value::Word;
    use dmt_dfg::node::{AluOp, NodeKind};

    #[test]
    fn manhattan_distance() {
        let a = Coord { x: 0, y: 0 };
        let b = Coord { x: 3, y: 4 };
        assert_eq!(a.manhattan(b), 7);
        assert_eq!(b.manhattan(a), 7);
    }

    #[test]
    fn hops_floor_at_one() {
        let mut g = Dfg::new();
        let c = g.add_node(NodeKind::Const(Word::ZERO));
        let d = g.add_node(NodeKind::Const(Word::ZERO));
        let a = g.add_node(NodeKind::Alu(AluOp::Add));
        g.connect(c, a, PortIx(0)).unwrap();
        g.connect(d, a, PortIx(1)).unwrap();
        let placement = vec![Coord { x: 1, y: 1 }; 3];
        let hops = PhaseProgram::hops_from_placement(&g, &placement);
        assert_eq!(
            hops[c.index()],
            vec![1],
            "co-located still crosses the switch"
        );
    }
}
