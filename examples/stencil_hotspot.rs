//! Domain scenario: iterative thermal simulation.
//!
//! ```sh
//! cargo run -p dmt-examples --bin stencil_hotspot
//! ```
//!
//! Runs several hotspot time steps back to back, feeding each step's
//! output temperatures into the next launch — the way Rodinia drives
//! `hotspot_kernel` — and compares the accumulated cost of the dMT-CGRA
//! against the Fermi SM over the whole simulation.

use dmt_core::common::ids::Addr;
use dmt_core::{Arch, Machine, SystemConfig};
use dmt_kernels::hotspot::Hotspot;
use dmt_kernels::Benchmark;

fn main() -> dmt_core::Result<()> {
    let bench = Hotspot;
    let steps = 6;
    let seed = 11;
    let tile_words = 8 * 16 * 16; // TILES × SIDE × SIDE

    let mut totals = Vec::new();
    for arch in [Arch::FermiSm, Arch::DmtCgra] {
        let machine = Machine::new(arch, SystemConfig::default());
        let kernel = match arch {
            Arch::DmtCgra => bench.dmt_kernel(),
            _ => bench.shared_kernel(),
        };
        let mut workload = bench.workload(seed);
        let mut cycles = 0u64;
        let mut joules = 0.0f64;
        for step in 0..steps {
            let report = machine.run(&kernel, workload.launch())?;
            if step == 0 {
                bench
                    .check(seed, &report.memory)
                    .expect("first step matches the reference");
            }
            cycles += report.cycles();
            joules += report.total_joules();
            // Feed T' back as next step's T (out region → t region).
            let t_new = report
                .memory
                .read_f32_slice(Addr(2 * tile_words * 4), tile_words as usize);
            workload.memory = report.memory;
            workload.memory.write_f32_slice(Addr(0), &t_new);
        }
        println!(
            "{arch:>10}: {steps} steps in {cycles:>8} cycles, {:>8.2} uJ",
            joules * 1e6
        );
        totals.push((cycles, joules));
    }
    println!(
        "\ndMT-CGRA over Fermi SM across the simulation: {:.2}x faster, {:.2}x less energy",
        totals[0].0 as f64 / totals[1].0 as f64,
        totals[0].1 / totals[1].1
    );
    Ok(())
}
