//! Fig 2b / Fig 3: memory-value forwarding in matrix multiplication.
//!
//! ```sh
//! cargo run -p dmt-examples --bin matmul_forwarding
//! ```
//!
//! Each thread computes one element of `C`; `fromThreadOrMem` lets a
//! single thread per row/column issue the real load while the rest receive
//! the value through the fabric, cutting loads from `N·K·M` to
//! `N·K + K·M` (§3.3).

use dmt_core::{Arch, Machine, SystemConfig};
use dmt_kernels::matmul::MatMul;
use dmt_kernels::Benchmark;

fn main() -> dmt_core::Result<()> {
    let bench = MatMul;
    let info = bench.info();
    println!("{} — {}", info.name, info.description);

    let dmt = Machine::new(Arch::DmtCgra, SystemConfig::default())
        .run(&bench.dmt_kernel(), bench.workload(7).launch())?;
    bench
        .check(7, &dmt.memory)
        .expect("dMT result matches the reference");
    let fermi = Machine::new(Arch::FermiSm, SystemConfig::default())
        .run(&bench.shared_kernel(), bench.workload(7).launch())?;
    bench
        .check(7, &fermi.memory)
        .expect("SM result matches the reference");

    println!("\nmemory traffic (the Fig 3 effect):");
    println!(
        "  dMT-CGRA : {:>6} loads issued, {:>6} values forwarded through eLDST units",
        dmt.stats.global_loads, dmt.stats.eldst_forwards
    );
    println!(
        "  Fermi SM : {:>6} load transactions + {:>6} scratchpad reads + {} barriers",
        fermi.stats.global_loads, fermi.stats.shared_loads, fermi.stats.barriers
    );
    println!("\nperformance:");
    println!(
        "  dMT-CGRA {} cycles vs Fermi SM {} cycles → {:.2}x",
        dmt.cycles(),
        fermi.cycles(),
        fermi.cycles() as f64 / dmt.cycles() as f64
    );
    println!(
        "  energy: {:.2} uJ vs {:.2} uJ → {:.2}x more efficient",
        dmt.total_joules() * 1e6,
        fermi.total_joules() * 1e6,
        fermi.total_joules() / dmt.total_joules()
    );
    Ok(())
}
