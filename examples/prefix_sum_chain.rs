//! Fig 6: the prefix-sum recurrence — `tagValue` placed *after*
//! `fromThreadOrConst`, closing a feedback loop through an elevator node.
//!
//! ```sh
//! cargo run -p dmt-examples --bin prefix_sum_chain
//! ```

use dmt_core::common::geom::{Delta, Dim3};
use dmt_core::common::ids::Addr;
use dmt_core::dfg::pretty;
use dmt_core::{Arch, KernelBuilder, LaunchInput, Machine, MemImage, SystemConfig, Word};

fn main() -> dmt_core::Result<()> {
    let n = 256u32;
    // Fig 6b, literally:
    //   mem_val = inArray[tid];
    //   sum = fromThreadOrConst<sum, -1, 0>() + mem_val;
    //   tagValue<sum>();
    //   prefixSum[tid] = sum;
    let mut kb = KernelBuilder::new("prefix_sum", Dim3::linear(n));
    let in_arr = kb.param("inArray");
    let out_arr = kb.param("prefixSum");
    let tid = kb.thread_idx(0);
    let a = kb.index_addr(in_arr, tid, 4);
    let mem_val = kb.load_global(a);
    let (prev_sum, rec) =
        kb.recurrent_from_thread_or_const(Delta::new(-1), Word::from_i32(0), None);
    let sum = kb.add_i(prev_sum, mem_val);
    kb.close_recurrence(rec, sum); // tagValue<sum>()
    let oa = kb.index_addr(out_arr, tid, 4);
    kb.store_global(oa, sum);
    let kernel = kb.finish()?;

    println!("the per-thread dataflow graph (Fig 6a):\n");
    print!("{}", pretty::dump(&kernel));

    let mut mem = MemImage::with_words(2 * n as usize);
    mem.write_i32_slice(Addr(0), &vec![1i32; n as usize]);
    let report = Machine::new(Arch::DmtCgra, SystemConfig::default()).run(
        &kernel,
        LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4 * n)], mem),
    )?;
    let out = report.memory.read_i32_slice(Addr(4 * n as u64), n as usize);
    assert!(out.iter().enumerate().all(|(i, &v)| v == i as i32 + 1));
    println!("\nprefixSum of 256 ones = 1..=256 ✓");
    println!(
        "{} cycles for {} threads — the elevator chain serializes exactly \
         the data dependence\n({} tokens re-tagged, 1 fallback constant), \
         nothing else.",
        report.cycles(),
        n,
        report.stats.elevator_ops
    );
    Ok(())
}
