//! Quickstart: build a kernel with the dMT-CGRA programming model and
//! compare all three machines on it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The kernel is the paper's Fig 1c separable convolution: each thread
//! loads one element and receives its neighbours as dataflow tokens from
//! threads `tid−1` and `tid+1` — no shared memory, no barrier, and the
//! image margins collapse into the fallback constant.

use dmt_core::common::geom::{Delta, Dim3};
use dmt_core::common::ids::Addr;
use dmt_core::{Arch, KernelBuilder, LaunchInput, Machine, MemImage, SystemConfig, Word};
use dmt_kernels::Benchmark;

fn main() -> dmt_core::Result<()> {
    let n = 1024u32;

    // --- 1. The dMT kernel (Fig 1c) -----------------------------------
    let mut kb = KernelBuilder::new("convolution", Dim3::linear(n));
    let image = kb.param("image");
    let result = kb.param("result");
    let tid = kb.thread_idx(0);
    let addr = kb.index_addr(image, tid, 4);
    let mem_elem = kb.load_global(addr);
    kb.tag_value(mem_elem);
    let lt = kb.from_thread_or_const(mem_elem, Delta::new(-1), Word::from_f32(0.0), None);
    let rt = kb.from_thread_or_const(mem_elem, Delta::new(1), Word::from_f32(0.0), None);
    let k0 = kb.const_f(0.25);
    let k1 = kb.const_f(0.5);
    let p0 = kb.mul_f(lt, k0);
    let p1 = kb.mul_f(mem_elem, k1);
    let p2 = kb.mul_f(rt, k0);
    let s = kb.add_f(p0, p1);
    let sum = kb.add_f(s, p2);
    let out = kb.index_addr(result, tid, 4);
    kb.store_global(out, sum);
    let kernel = kb.finish()?;

    // --- 2. A workload -------------------------------------------------
    let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
    let mk_input = || {
        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_f32_slice(Addr(0), &data);
        LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4 * n)], mem)
    };

    // --- 3. Run it on the dMT-CGRA -------------------------------------
    let dmt = Machine::new(Arch::DmtCgra, SystemConfig::default());
    let report = dmt.run(&kernel, mk_input())?;
    println!("{report}");
    println!(
        "  {} loads issued, {} inter-thread tokens, {} fallback constants",
        report.stats.global_loads, report.stats.elevator_ops, report.stats.elevator_const_tokens
    );
    let got = report.memory.read_f32_slice(Addr(4 * n as u64), 4);
    println!("  result[0..4] = {got:?}");

    // --- 4. The same convolution needs shared memory + a barrier on the
    //        von Neumann machines; the suite carries that variant.
    let bench = dmt_kernels::convolution::Convolution::default();
    for arch in [Arch::FermiSm, Arch::MtCgra, Arch::DmtCgra] {
        let k = match arch {
            Arch::DmtCgra => bench.dmt_kernel(),
            _ => bench.shared_kernel(),
        };
        let r = Machine::new(arch, SystemConfig::default()).run(&k, bench.workload(42).launch())?;
        println!(
            "{arch:>10}: {:>8} cycles  {:>9.2} uJ",
            r.cycles(),
            r.total_joules() * 1e6
        );
    }
    Ok(())
}
