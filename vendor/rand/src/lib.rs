//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API).
//!
//! The build environment for this reproduction is hermetic — no registry
//! access — so the workspace vendors the tiny slice of `rand` it actually
//! uses: a seedable [`rngs::StdRng`], the [`Rng`] / [`SeedableRng`] traits,
//! and uniform range sampling for the primitive types the kernels generate.
//! The generator is SplitMix64, which is plenty for seeded test-input
//! generation (it is *not* the crate's ChaCha-based `StdRng`, so streams
//! differ from upstream; everything in-tree only relies on determinism).
//!
//! To switch back to the real crate, point the `rand` entry in
//! `[workspace.dependencies]` at crates.io — the API used here is
//! call-compatible.

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open `lo..hi` range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a uniform value in `[lo, hi)` using `rng`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// The raw entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value from the half-open range `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_uniform(self, range.start, range.end)
    }

    /// Draws a uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, irrelevant for test-input generation.
                let hi_bits = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                ((lo as $wide).wrapping_add(hi_bits as $wide)) as $t
            }
        }
    )*};
}

impl_sample_int!(
    i32 => i64,
    u32 => u64,
    i64 => i64,
    u64 => u64,
    usize => u64,
);

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        let v = lo + unit * (hi - lo);
        // `lo + unit * span` can round up to exactly `hi` for narrow
        // ranges; the contract is half-open.
        if v >= hi {
            hi.next_down().max(lo)
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + unit * (hi - lo);
        if v >= hi {
            hi.next_down().max(lo)
        } else {
            v
        }
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): full-period, passes
            // BigCrush, and one mul-xor-shift chain per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| rng.gen_range(0i32..1000))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(1.0f32..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn float_ranges_stay_half_open_even_when_narrow() {
        let mut rng = StdRng::seed_from_u64(5);
        let lo = 1.0f32;
        let hi = 1.0000001f32; // one ulp above lo
        for _ in 0..10_000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "{v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn negative_spans_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            match rng.gen_range(-2i32..2) {
                -2 => seen_lo = true,
                1 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }
}
