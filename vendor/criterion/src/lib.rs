//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! bench API.
//!
//! The build environment is hermetic, so this vendored crate provides just
//! enough of criterion's surface for the workspace's `benches/` to compile
//! and produce useful timings: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a plain
//! warmup-then-N-samples loop reporting min/mean; there is no statistical
//! analysis, HTML report, or baseline comparison. Swap the `criterion`
//! entry in `[workspace.dependencies]` to crates.io to get the real
//! harness — the bench sources need no changes.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement settings shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets how long to run the routine untimed before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Caps the total time spent taking timed samples.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), &self.settings, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs the registered group functions (used by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the untimed warmup duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Caps the total sampling time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Runs one benchmark inside the group namespace.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, &self.settings, f);
        self
    }

    /// Finishes the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Passed to the bench closure; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, recording one sample per invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: run untimed until the warmup budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        let budget_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, settings: &Settings, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: settings.sample_size.max(1),
        warm_up_time: settings.warm_up_time,
        measurement_time: settings.measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<40} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Declares a bench group: either `criterion_group!(name, fn...)` or the
/// long form with `config = <expr>`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs this benchmark group.
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            });
        });
        assert!(runs >= 5);
    }

    #[test]
    fn groups_namespace_their_benches() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).bench_function("x", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
