//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing API.
//!
//! The build environment is hermetic, so the workspace vendors the slice of
//! proptest it uses: the [`proptest!`] macro, [`Strategy`] implementations
//! for integer ranges, [`any`], [`collection::vec`], `prop_filter`, and the
//! `prop_assert*` / `prop_assume!` macros. Generation is seeded and
//! deterministic (same inputs every run — good for CI). The big features of
//! real proptest — shrinking, failure persistence, recursive strategies —
//! are intentionally absent; swap the `proptest` entry in
//! `[workspace.dependencies]` to crates.io to get them back, the test
//! sources need no changes.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject(String),
    /// A `prop_assert*` failed; the runner panics with this message.
    Fail(String),
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) draws tolerated per property.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config that requires `cases` passing cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// The deterministic source of generated values.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the runner RNG for a property named `name`. The seed mixes
    /// the property name so distinct properties explore distinct streams
    /// while every run of the same property is reproducible.
    #[must_use]
    pub fn for_property(name: &str) -> Self {
        let mut seed = 0xD1F7_C6A5_u64;
        for b in name.bytes() {
            seed = seed
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(u64::from(b));
        }
        TestRng(StdRng::seed_from_u64(seed))
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Keeps only values satisfying `pred`; other draws are rejected and
    /// retried (no shrinking, so `whence` only labels exhaustion panics).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive draws",
            self.whence
        );
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.start..self.end)
    }
}

macro_rules! impl_inclusive_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi < <$t>::MAX {
                    rng.0.gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    rng.0.gen_range(lo - 1..hi).wrapping_add(1)
                } else {
                    // Full-domain inclusive range: use the raw bit stream.
                    rand::RngCore::next_u64(&mut rng.0) as $t
                }
            }
        }
    )*};
}

impl_inclusive_range_strategy!(i32, u32, i64, u64, usize);

/// Types with a canonical "anything goes" strategy (subset of proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(&mut rng.0) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, u8, i16, u16, i32, u32, i64, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(&mut rng.0) & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing unconstrained values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of exactly `len` elements drawn from
    /// `element`. (Real proptest also accepts length ranges; the workspace
    /// only uses fixed lengths.)
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The case count one property actually runs: `config.cases`, unless the
/// `DMT_PROPTEST_CASES` environment variable names a positive integer, in
/// which case that count overrides every property's configured one. This
/// is the deep-fuzzing knob the scheduled `proptest-deep` CI job turns —
/// push CI keeps the cheap per-test defaults, the weekly job cranks every
/// property to the same raised count without touching test sources.
#[must_use]
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    std::env::var("DMT_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(config.cases)
}

/// Drives one property: draws cases until `config.cases` pass (or the
/// `DMT_PROPTEST_CASES` override, see [`effective_cases`]), rejecting
/// via [`TestCaseError::Reject`] and panicking on [`TestCaseError::Fail`].
///
/// This is the runtime behind the [`proptest!`] macro; `name` seeds the RNG.
///
/// # Panics
///
/// Panics when a case fails or the reject budget is exhausted.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = effective_cases(config);
    // Scale the reject budget with a raised case count so assume-heavy
    // properties keep their configured reject-to-pass headroom.
    let scale = u64::from(cases.max(1)).div_ceil(u64::from(config.cases.max(1)));
    let max_rejects = u64::from(config.max_global_rejects).saturating_mul(scale);
    let mut rng = TestRng::for_property(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property {name:?}: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passing cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name:?} failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item expands to a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Rejects the current case unless `cond` holds; the runner redraws.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {l:?}\n right: {r:?}",
                stringify!($left), stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left), stringify!($right), format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {l:?}",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Everything a property-test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -24i32..=24, y in 1u32..=512) {
            prop_assert!((-24..=24).contains(&x));
            prop_assert!((1..=512).contains(&y));
        }

        #[test]
        fn filter_upholds_predicate(x in (-8i32..=8).prop_filter("non-zero", |v| *v != 0)) {
            prop_assert_ne!(x, 0);
        }

        #[test]
        fn vectors_have_requested_length(v in crate::collection::vec(-1000i32..1000, 128)) {
            prop_assert_eq!(v.len(), 128);
            prop_assert!(v.iter().all(|e| (-1000..1000).contains(e)));
        }

        #[test]
        fn assume_redraws(x in 0u32..=4) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn any_i32_is_not_constant() {
        let mut rng = crate::TestRng::for_property("any_i32");
        let a: Vec<i32> = (0..8).map(|_| i32::arbitrary(&mut rng)).collect();
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn env_knob_overrides_case_count() {
        // Serial with respect to this binary's other properties only in
        // effect, not in execution: a concurrent property reads the knob
        // once at entry, so a transient override never strands a runner.
        std::env::set_var("DMT_PROPTEST_CASES", "7");
        let mut runs = 0u32;
        crate::run_property("env_knob", &ProptestConfig::with_cases(64), |_| {
            runs += 1;
            Ok(())
        });
        std::env::remove_var("DMT_PROPTEST_CASES");
        assert_eq!(runs, 7, "DMT_PROPTEST_CASES must override the config");
        assert_eq!(
            crate::effective_cases(&ProptestConfig::with_cases(64)),
            64,
            "without the knob the configured count stands"
        );
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_context() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::Fail("boom".to_string()))
        });
    }
}
