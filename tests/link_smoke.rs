//! Workspace-wiring smoke test: if any intra-workspace dependency edge
//! breaks (a crate renamed, a re-export dropped, a feature gate added),
//! this fails fast with a link/compile error before the heavier suites run.
//!
//! The test itself is deliberately trivial — a 16-thread copy kernel — but
//! it exercises the full cross-crate chain on all three architectures:
//! `dmt-dfg` (builder) → `dmt-compiler` / `dmt-gpu` (lowering) →
//! `dmt-fabric` / `dmt-mem` (execution) → `dmt-energy` (reporting), all
//! through the `dmt-core` facade.

use dmt_core::common::geom::Dim3;
use dmt_core::common::ids::Addr;
use dmt_core::{Arch, KernelBuilder, LaunchInput, Machine, MemImage, SystemConfig, Word};

#[test]
fn machine_new_runs_a_trivial_kernel_on_every_arch() {
    let n = 16u32;
    let mut kb = KernelBuilder::new("link_smoke_copy", Dim3::linear(n));
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let a = kb.index_addr(inp, tid, 4);
    let x = kb.load_global(a);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, x);
    let kernel = kb.finish().expect("trivial kernel is well-formed");

    let data: Vec<i32> = (0..n as i32).map(|i| 3 * i + 1).collect();
    for arch in Arch::ALL {
        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_i32_slice(Addr(0), &data);
        let input = LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4 * n)], mem);
        let report = Machine::new(arch, SystemConfig::default())
            .run(&kernel, input)
            .unwrap_or_else(|e| panic!("{arch}: trivial kernel failed: {e}"));
        assert_eq!(report.arch, arch);
        assert_eq!(
            report
                .memory
                .read_i32_slice(Addr(u64::from(4 * n)), n as usize),
            data,
            "{arch}: copy output mismatch"
        );
        assert!(report.cycles() > 0, "{arch}: no cycles accounted");
        assert!(report.energy.total_j() > 0.0, "{arch}: no energy accounted");
    }
}
