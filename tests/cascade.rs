//! §4.3 long-distance machinery: correctness is invariant to the token
//! buffer size — cascades and Live-Value-Cache spills must only change
//! timing, never results.

use dmt_core::common::geom::{Delta, Dim3};
use dmt_core::common::ids::Addr;
use dmt_core::{
    compiler, dfg::interp, fabric::FabricMachine, Kernel, KernelBuilder, LaunchInput, MemImage,
    SystemConfig, Word,
};

fn long_shift_kernel(delta: i32, n: u32) -> Kernel {
    let mut kb = KernelBuilder::new("long_shift", Dim3::linear(n));
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let a = kb.index_addr(inp, tid, 4);
    let x = kb.load_global(a);
    let v = kb.from_thread_or_const(x, Delta::new(delta), Word::from_i32(-7), None);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, v);
    kb.finish().expect("well-formed")
}

fn run_with_buffer(kernel: &Kernel, tb: u32) -> (MemImage, u64, usize, u64) {
    let mut cfg = SystemConfig::default();
    cfg.fabric.token_buffer_entries = tb;
    let program = compiler::compile(kernel, &cfg).expect("compiles");
    let comm_nodes = program.phases[0]
        .graph
        .node_ids()
        .filter(|&id| program.phases[0].graph.kind(id).comm().is_some())
        .count();
    let n = kernel.threads_per_block();
    let mut mem = MemImage::with_words(2 * n as usize);
    mem.write_i32_slice(
        Addr(0),
        &(0..n as i32).map(|i| i * 3 + 1).collect::<Vec<_>>(),
    );
    let run = FabricMachine::new(cfg)
        .run(
            &program,
            LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4 * n)], mem),
        )
        .expect("runs");
    (
        run.memory,
        run.stats.cycles,
        comm_nodes,
        run.stats.lvc_writes,
    )
}

#[test]
fn results_invariant_across_buffer_sizes() {
    for delta in [-3i32, -18, -40, 25, 100] {
        let kernel = long_shift_kernel(delta, 256);
        let oracle = {
            let n = 256;
            let mut mem = MemImage::with_words(2 * n);
            mem.write_i32_slice(
                Addr(0),
                &(0..n as i32).map(|i| i * 3 + 1).collect::<Vec<_>>(),
            );
            interp::run(
                &kernel,
                LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(1024)], mem),
            )
            .expect("interp")
            .memory
        };
        for tb in [2u32, 4, 8, 16, 64] {
            let (memory, _, _, _) = run_with_buffer(&kernel, tb);
            assert_eq!(memory, oracle, "delta {delta} buffer {tb}");
        }
    }
}

#[test]
fn small_buffers_cascade_large_deltas() {
    let kernel = long_shift_kernel(-18, 256);
    let (_, _, nodes_small, _) = run_with_buffer(&kernel, 4);
    let (_, _, nodes_large, _) = run_with_buffer(&kernel, 64);
    assert!(nodes_small > nodes_large, "{nodes_small} vs {nodes_large}");
    assert_eq!(nodes_large, 1, "one elevator suffices at 64 entries");
    assert_eq!(nodes_small, 5, "⌈18/4⌉ elevators at 4 entries");
}

#[test]
fn exhausted_cu_pool_falls_back_to_lvc() {
    // Huge delta + tiny buffers + tiny CU pool → the compiler must spill.
    let mut cfg = SystemConfig::default();
    cfg.fabric.token_buffer_entries = 2;
    cfg.grid.controls = 4;
    let kernel = long_shift_kernel(-100, 256);
    let program = compiler::compile(&kernel, &cfg).expect("compiles with a spill");
    assert_eq!(program.phases[0].lvc_spilled.len(), 1);
    let n = 256;
    let mut mem = MemImage::with_words(2 * n);
    mem.write_i32_slice(Addr(0), &(0..n as i32).collect::<Vec<_>>());
    let run = FabricMachine::new(cfg)
        .run(
            &program,
            LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(1024)], mem),
        )
        .expect("runs via the LVC");
    assert!(run.stats.lvc_writes > 0, "spill traffic recorded");
}
