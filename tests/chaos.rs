//! The chaos suite: seeded deterministic fault schedules against the
//! execution stack, asserting the robustness invariant end to end.
//!
//! For **any** fault schedule (proptest over site × trigger × seed):
//!
//! 1. every job ends in exactly one typed terminal outcome
//!    (`ok` / `infeasible` / `failed` / `timed_out`) — no slot is ever
//!    dropped, duplicated or left untyped;
//! 2. any job that succeeds produces the byte-identical per-job
//!    artifact JSON of a fault-free run;
//! 3. the same fault spec and seed replay the byte-identical fault log
//!    (`faults::render_log`) and the identical outcome vector;
//! 4. the daemon keeps answering `status` under an adversarial schedule
//!    and drains within a wall-clock bound — it never hangs past its
//!    deadline.
//!
//! Executors here are deterministic stubs (outcomes are pure functions
//! of the spec), so a schedule sweep costs milliseconds per case; the
//! real-simulation identity contracts live in `runner_cache.rs` and
//! `runner_parallel.rs`.

use dmt_common::faults::{self, FaultPlan, Trigger};
use dmt_common::RunLimits;
use dmt_core::{Arch, SystemConfig};
use dmt_runner::{Artifact, Cache, ExecPlan, JobMetrics, JobOutcome, JobSpec, Json};
use dmt_serve::{Executor, ServeOptions, Server};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// A unique, empty scratch directory per call (tests share one process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmt_chaos_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small job grid: one bench across the three machines, three seeds.
fn grid() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for seed in 0..3u64 {
        for arch in [Arch::FermiSm, Arch::MtCgra, Arch::DmtCgra] {
            jobs.push(JobSpec::new("scan", arch, SystemConfig::default(), seed));
        }
    }
    jobs
}

/// Deterministic stub executor: a pure function of the spec, so two
/// runs of the same grid must agree byte for byte.
fn stub(spec: &JobSpec) -> JobOutcome {
    JobOutcome::completed(JobMetrics {
        kernel: spec.bench.clone(),
        stats: dmt_common::stats::RunStats {
            cycles: spec.job_hash() % 10_000 + 1,
            ..Default::default()
        },
        energy: dmt_core::energy::EnergyReport::default(),
    })
}

/// Runs the grid through a cached serial plan under `plan`, returning
/// the outcomes and the fault log. Serial (`threads 1`) because the
/// fault log's byte-identity contract is pinned to a fixed dispatch
/// order.
fn chaos_run(plan: &FaultPlan, tag: &str) -> (Vec<JobOutcome>, String) {
    let dir = scratch(tag);
    let _guard = faults::install_guarded(plan.clone());
    let cache = Cache::open(&dir).expect("chaos scratch cache");
    let jobs = grid();
    let outcomes = ExecPlan::new(&jobs).cache(Some(&cache)).run(stub);
    let log = faults::render_log();
    drop(_guard);
    let _ = std::fs::remove_dir_all(&dir);
    (outcomes, log)
}

/// The per-job artifact documents of a run, rendered to bytes.
fn job_docs(jobs: &[JobSpec], outcomes: &[JobOutcome]) -> Vec<String> {
    let art = Artifact::new("chaos", 1, 0, 0, jobs.to_vec(), outcomes.to_vec());
    let Json::Arr(docs) = art.jobs_json() else {
        panic!("jobs_json is an array")
    };
    docs.into_iter().map(|d| d.render()).collect()
}

/// One typed terminal outcome, internally consistent.
fn assert_typed(outcome: &JobOutcome) -> Result<(), TestCaseError> {
    let status = outcome.status();
    prop_assert!(
        ["ok", "infeasible", "failed", "timed_out"].contains(&status),
        "untyped outcome {outcome:?}"
    );
    match status {
        "ok" => {
            prop_assert!(outcome.metrics().is_some());
            prop_assert!(outcome.error().is_none());
        }
        _ => {
            prop_assert!(outcome.metrics().is_none());
            prop_assert!(outcome.error().is_some(), "{outcome:?} carries no error");
        }
    }
    Ok(())
}

/// The batch-stack seams this sweep drives; the daemon-side sites are
/// exercised by the serve scenario below.
const SWEPT_SITES: [&str; 4] = [
    faults::site::CACHE_READ,
    faults::site::CACHE_WRITE,
    faults::site::CACHE_RENAME,
    faults::site::POOL_EXEC,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The chaos invariant over arbitrary single-site schedules.
    /// (The vendored proptest subset has no f64 or one-of strategies,
    /// so sites and triggers are decoded from integer draws.)
    #[test]
    fn every_job_ends_in_exactly_one_typed_outcome(
        site_ix in 0usize..SWEPT_SITES.len(),
        use_nth in any::<bool>(),
        nth in 1u64..=12,
        prob_pct in 5u64..=95,
        seed in any::<u64>(),
    ) {
        let site = SWEPT_SITES[site_ix];
        let trigger = if use_nth {
            Trigger::Nth(nth)
        } else {
            Trigger::Prob(prob_pct as f64 / 100.0)
        };
        let plan = FaultPlan::empty().seeded(seed).with(site, trigger);
        let jobs = grid();
        let baseline = {
            let (outcomes, log) = chaos_run(&FaultPlan::empty(), "baseline");
            prop_assert_eq!(log, "", "an empty plan never fires");
            outcomes
        };
        let (faulted, log_a) = chaos_run(&plan, "faulted_a");

        // 1. One typed outcome per submitted job, none dropped.
        prop_assert_eq!(faulted.len(), jobs.len());
        for outcome in &faulted {
            assert_typed(outcome)?;
        }

        // 2. Succeeding jobs are byte-identical to the fault-free run.
        let base_docs = job_docs(&jobs, &baseline);
        let fault_docs = job_docs(&jobs, &faulted);
        for (i, outcome) in faulted.iter().enumerate() {
            if outcome.status() == "ok" {
                prop_assert_eq!(
                    &fault_docs[i], &base_docs[i],
                    "job {} survived the fault but its artifact drifted", i
                );
            }
        }

        // 3. Same spec + seed: byte-identical fault log and outcomes.
        let (replayed, log_b) = chaos_run(&plan, "faulted_b");
        prop_assert_eq!(log_a, log_b, "fault log must replay byte-identically");
        prop_assert_eq!(faulted, replayed, "outcomes must replay identically");
    }

    /// Multi-site probabilistic schedules replay bit-for-bit too: the
    /// firing decision is a pure function of (seed, site, ordinal).
    #[test]
    fn multi_site_prob_schedules_replay_byte_identically(
        seed in any::<u64>(),
        p_read_pct in 10u64..=90,
        p_write_pct in 10u64..=90,
    ) {
        let plan = FaultPlan::empty()
            .seeded(seed)
            .with(faults::site::CACHE_READ, Trigger::Prob(p_read_pct as f64 / 100.0))
            .with(faults::site::CACHE_WRITE, Trigger::Prob(p_write_pct as f64 / 100.0))
            .with(faults::site::POOL_EXEC, Trigger::Prob(0.3));
        let (a, log_a) = chaos_run(&plan, "prob_a");
        let (b, log_b) = chaos_run(&plan, "prob_b");
        prop_assert_eq!(a, b);
        prop_assert_eq!(log_a, log_b);
    }
}

/// One line-JSON request against the daemon, tolerating injected
/// request failures (`serve.request`) by retrying on a fresh line.
fn req_tolerant(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> Json {
    for _ in 0..16 {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        let doc = Json::parse(resp.trim_end()).expect("response parses");
        let injected = doc
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("injected fault"));
        if !injected {
            return doc;
        }
    }
    panic!("request {line:?} kept hitting injected faults");
}

/// An adversarial fixed schedule against the live daemon: a request
/// fault, a cache-write fault and a flaky-then-fine executor, plus a
/// per-job deadline. The daemon must answer `status` throughout, drive
/// every job to a typed terminal state, and drain within a wall-clock
/// bound — never hanging past its deadline.
#[test]
fn daemon_survives_an_adversarial_schedule_without_hanging() {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let dir = scratch("daemon");
        let _guard = faults::install_guarded(
            FaultPlan::parse("seed=3;serve.request:nth=2;cache.write:nth=1").unwrap(),
        );
        // Limit-aware stub: jobs under a tight budget time out; the
        // first attempt of everything else fails transiently.
        let attempts = std::sync::atomic::AtomicUsize::new(0);
        let exec: Executor = Box::new(move |spec, limits: &RunLimits<'_>| {
            if limits.deadline_cycles < 100 {
                return JobOutcome::TimedOut(format!(
                    "deadline exceeded for {spec}: budget {} cycles",
                    limits.deadline_cycles
                ));
            }
            if attempts.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
                return JobOutcome::Failed(format!("transient stub failure for {spec}"));
            }
            stub(spec)
        });
        let opts = ServeOptions {
            retry_backoff_ms: 1,
            ..ServeOptions::default()
        };
        let server = Server::bind("127.0.0.1:0", &dir, opts, exec).expect("bind");
        let addr = server.local_addr().expect("addr");
        let daemon = std::thread::spawn(move || server.run().expect("serve"));

        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let submit = req_tolerant(
            &mut reader,
            &mut writer,
            r#"{"verb":"submit","jobs":[
                {"bench":"a","arch":"dmt_cgra"},
                {"bench":"b","arch":"mt_cgra"},
                {"bench":"c","arch":"fermi_sm","deadline_cycles":1}]}"#
                .replace('\n', " ")
                .as_str(),
        );
        assert_eq!(submit.get("ok"), Some(&Json::Bool(true)), "{submit:?}");
        let Some(Json::Arr(jobs)) = submit.get("jobs") else {
            panic!("no jobs in {submit:?}")
        };
        let hashes: Vec<String> = jobs
            .iter()
            .map(|j| j.get("job_hash").and_then(Json::as_str).unwrap().to_owned())
            .collect();
        // `status` keeps answering until every job is terminal.
        let mut states = Vec::new();
        for h in &hashes {
            loop {
                let s = req_tolerant(
                    &mut reader,
                    &mut writer,
                    &format!(r#"{{"verb":"status","job_hash":"{h}"}}"#),
                );
                match s.get("state").and_then(Json::as_str) {
                    Some(state @ ("done" | "failed" | "timed_out")) => {
                        states.push(state.to_owned());
                        break;
                    }
                    _ => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        }
        req_tolerant(&mut reader, &mut writer, r#"{"verb":"drain"}"#);
        let summary = daemon.join().expect("daemon thread");
        // Every job reached exactly one typed terminal outcome: the two
        // retried jobs completed, the budgeted one timed out.
        assert_eq!(states.iter().filter(|s| *s == "done").count(), 2);
        assert_eq!(states.iter().filter(|s| *s == "timed_out").count(), 1);
        assert_eq!((summary.done, summary.failed, summary.timed_out), (2, 0, 1));
        // The injected schedule actually fired.
        let log = faults::render_log();
        assert!(
            log.contains("serve.request") && log.contains("cache.write"),
            "schedule must have fired: {log:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
        tx.send(()).expect("report");
    });
    // The whole scenario — retries, timeout, drain — must finish well
    // within the bound: a hang here is the bug this test exists for.
    rx.recv_timeout(Duration::from_secs(120))
        .expect("daemon scenario hung");
}
