//! The parallel runner's central contract: aggregated results are
//! **byte-identical** for any worker count — a parallel suite run is the
//! serial run, only faster. Exercised over the CI smoke grid (first
//! three Table 3 benchmarks × all three machines).

use dmt_bench::{fig11_report, fig12_report, run_suite_pooled, suite_jobs, SEED};
use dmt_core::SystemConfig;
use dmt_runner::{Artifact, ExecPlan, JobOutcome};

#[test]
fn parallel_suite_is_byte_identical_to_serial() {
    let cfg = SystemConfig::default();
    let serial = run_suite_pooled(cfg, SEED, 3, 1, None, None);
    let parallel = run_suite_pooled(cfg, SEED, 3, 4, None, None);

    // Same grid, same outcomes, in the same order.
    assert_eq!(serial.jobs, parallel.jobs);
    assert_eq!(serial.outcomes, parallel.outcomes);

    // Every point of the default configuration is feasible — a run that
    // errors here is a regression, not an annotatable design point (the
    // headline binaries exit nonzero on it; this pins the same contract).
    assert!(
        serial.outcomes.iter().all(|o| o.metrics().is_some()),
        "default-config suite must complete on every machine"
    );

    // Rendered figures agree byte-for-byte.
    assert_eq!(fig11_report(&serial.rows()), fig11_report(&parallel.rows()));
    assert_eq!(fig12_report(&serial.rows()), fig12_report(&parallel.rows()));

    // The deterministic part of the artifact agrees byte-for-byte (the
    // volatile wall-clock/thread metadata lives outside "jobs").
    let serial_jobs = serial.artifact("smoke").jobs_json().render();
    let parallel_jobs = parallel.artifact("smoke").jobs_json().render();
    assert_eq!(serial_jobs, parallel_jobs);
}

#[test]
fn artifact_records_every_job_with_stable_hashes() {
    let cfg = SystemConfig::default();
    let run = run_suite_pooled(cfg, SEED, 2, 2, None, None);
    let art = run.artifact("smoke");
    let text = art.to_json().render();

    assert!(text.contains("\"schema_version\": 2"), "{text}");
    assert!(text.contains("\"suite\": \"smoke\""), "{text}");
    for needle in [
        "\"bench\": \"scan\"",
        "\"bench\": \"matrixMul\"",
        "\"arch\": \"fermi_sm\"",
        "\"arch\": \"mt_cgra\"",
        "\"arch\": \"dmt_cgra\"",
        "\"status\": \"ok\"",
        "\"cycles\":",
        "\"total_j\":",
        "\"config_hash\": \"0x",
        "\"job_hash\": \"0x",
        "\"phases\": [",
    ] {
        assert!(text.contains(needle), "artifact missing {needle}: {text}");
    }

    // All six jobs share one config, hence one config hash; job hashes
    // are pairwise distinct.
    let hashes: Vec<u64> = run.jobs.iter().map(|j| j.job_hash()).collect();
    let mut unique = hashes.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), hashes.len());
    let cfg_hashes: Vec<u64> = run.jobs.iter().map(|j| j.config_hash()).collect();
    assert!(cfg_hashes.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn artifact_round_trips_through_a_rebuild() {
    // The artifact constructor is pure over (specs, outcomes): rebuilding
    // from the same run yields the same document, including hashes.
    let run = run_suite_pooled(SystemConfig::default(), SEED, 1, 2, None, None);
    let a = Artifact::new(
        "x",
        run.threads,
        run.wall_ms,
        run.seed,
        run.jobs.clone(),
        run.outcomes.clone(),
    );
    let b = run.artifact("x");
    assert_eq!(a.to_json().render(), b.to_json().render());
}

#[test]
fn panicking_job_does_not_abort_dispatched_siblings() {
    // One panicking executor must cost exactly one job: its slot becomes
    // a typed Failed outcome, and every sibling outcome is byte-identical
    // to a panic-free run — for any worker count. (Regression: the pool
    // used to let an executor panic poison the whole run.)
    let grid = suite_jobs(SystemConfig::default(), SEED, 3);
    let victim = grid[4].job_hash();
    let clean: Vec<JobOutcome> = ExecPlan::new(&grid).threads(2).run(dmt_bench::execute_job);
    for threads in [1, 4] {
        let outcomes = ExecPlan::new(&grid).threads(threads).run(|spec| {
            assert!(spec.job_hash() != victim, "panic before producing");
            dmt_bench::execute_job(spec)
        });
        assert_eq!(outcomes.len(), grid.len());
        for (i, (got, want)) in outcomes.iter().zip(&clean).enumerate() {
            if grid[i].job_hash() == victim {
                assert_eq!(got.status(), "failed", "threads={threads}: {got:?}");
                assert!(
                    got.error().unwrap().contains("panic before producing"),
                    "threads={threads}: {got:?}"
                );
            } else {
                assert_eq!(got, want, "threads={threads}: sibling {i} diverged");
            }
        }
    }
}

#[test]
fn suite_jobs_grid_is_stable() {
    // The job grid itself (order and hashes) must not depend on ambient
    // state — two constructions are identical.
    let a = suite_jobs(SystemConfig::default(), SEED, 9);
    let b = suite_jobs(SystemConfig::default(), SEED, 9);
    assert_eq!(a, b);
    assert_eq!(a.len(), 27);
    let ha: Vec<u64> = a.iter().map(dmt_runner::JobSpec::job_hash).collect();
    let hb: Vec<u64> = b.iter().map(dmt_runner::JobSpec::job_hash).collect();
    assert_eq!(ha, hb);
}
