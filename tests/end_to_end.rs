//! End-to-end validation: every Table 3 benchmark, on every machine, is
//! checked against its CPU reference, and the two dMT executions (cycle
//! simulator vs functional interpreter) agree word-for-word on memory.

use dmt_core::{dfg::interp, Arch, SystemConfig};
use dmt_kernels::suite;
use dmt_tests::run_checked;

#[test]
fn every_benchmark_is_correct_on_every_architecture() {
    let cfg = SystemConfig::default();
    for bench in suite::all() {
        for arch in Arch::ALL {
            let _ = run_checked(bench.as_ref(), arch, cfg, 42);
        }
    }
}

#[test]
fn fabric_memory_matches_the_interpreter_exactly() {
    let cfg = SystemConfig::default();
    for bench in suite::all() {
        let kernel = bench.dmt_kernel();
        let oracle = interp::run(&kernel, bench.workload(7).launch())
            .unwrap_or_else(|e| panic!("{}: interp: {e}", bench.info().name));
        let report = run_checked(bench.as_ref(), Arch::DmtCgra, cfg, 7);
        assert_eq!(
            report.memory,
            oracle.memory,
            "{}: cycle-level fabric diverges from the functional oracle",
            bench.info().name
        );
    }
}

#[test]
fn gpu_and_mt_agree_on_shared_kernels() {
    let cfg = SystemConfig::default();
    for bench in suite::all() {
        let fermi = run_checked(bench.as_ref(), Arch::FermiSm, cfg, 11);
        let mt = run_checked(bench.as_ref(), Arch::MtCgra, cfg, 11);
        assert_eq!(
            fermi.memory,
            mt.memory,
            "{}: SM and MT-CGRA disagree on the same kernel",
            bench.info().name
        );
    }
}

#[test]
fn dmt_wins_the_headline_comparison() {
    // The reproduction's Fig 11/12 shape: dMT-CGRA beats the SM on geomean
    // speedup and energy, and improves on the baseline MT-CGRA.
    let cfg = SystemConfig::default();
    let mut dmt_speedups = Vec::new();
    let mut mt_speedups = Vec::new();
    let mut dmt_eff = Vec::new();
    for bench in suite::all() {
        let fermi = run_checked(bench.as_ref(), Arch::FermiSm, cfg, 42);
        let mt = run_checked(bench.as_ref(), Arch::MtCgra, cfg, 42);
        let dmt = run_checked(bench.as_ref(), Arch::DmtCgra, cfg, 42);
        dmt_speedups.push(fermi.cycles() as f64 / dmt.cycles() as f64);
        mt_speedups.push(fermi.cycles() as f64 / mt.cycles() as f64);
        dmt_eff.push(fermi.total_joules() / dmt.total_joules());
        assert!(
            dmt.cycles() < mt.cycles(),
            "{}: direct communication should beat the shared-memory fabric",
            bench.info().name
        );
    }
    let geomean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    let g_dmt = geomean(&dmt_speedups);
    let g_mt = geomean(&mt_speedups);
    let g_eff = geomean(&dmt_eff);
    assert!(g_dmt > 1.5, "dMT geomean speedup {g_dmt:.2} too low");
    assert!(g_dmt > g_mt, "dMT ({g_dmt:.2}) must beat MT ({g_mt:.2})");
    assert!(
        g_eff > g_dmt * 0.8,
        "energy efficiency {g_eff:.2} out of shape"
    );
}

#[test]
fn memory_traffic_reduction_shows_up_in_counters() {
    // §3.3: matmul loads drop from per-thread staging to per-element.
    let cfg = SystemConfig::default();
    let bench = dmt_kernels::matmul::MatMul;
    let fermi = run_checked(&bench, Arch::FermiSm, cfg, 3);
    let dmt = run_checked(&bench, Arch::DmtCgra, cfg, 3);
    assert!(
        dmt.stats.eldst_forwards > 10 * dmt.stats.global_loads,
        "most operand deliveries should be forwards, got {} forwards / {} loads",
        dmt.stats.eldst_forwards,
        dmt.stats.global_loads
    );
    assert!(fermi.stats.barriers > 0, "the baseline pays barriers");
    assert_eq!(dmt.stats.barriers, 0, "the dMT variant has none");
    assert_eq!(dmt.stats.shared_loads + dmt.stats.shared_stores, 0);
}
