//! The simulators are deterministic: identical inputs produce identical
//! cycle counts, statistics and energy on every run — a prerequisite for
//! reproducible experiments.

use dmt_core::{Arch, SystemConfig};
use dmt_kernels::suite;
use dmt_tests::run_checked;

#[test]
fn repeated_runs_are_bit_identical() {
    let cfg = SystemConfig::default();
    for bench in suite::all().into_iter().take(4) {
        for arch in Arch::ALL {
            let a = run_checked(bench.as_ref(), arch, cfg, 5);
            let b = run_checked(bench.as_ref(), arch, cfg, 5);
            assert_eq!(a.cycles(), b.cycles(), "{} {arch}", bench.info().name);
            assert_eq!(a.stats, b.stats, "{} {arch}", bench.info().name);
            assert_eq!(a.memory, b.memory, "{} {arch}", bench.info().name);
            assert!(
                (a.total_joules() - b.total_joules()).abs() < 1e-15,
                "{} {arch}",
                bench.info().name
            );
        }
    }
}

#[test]
fn different_seeds_change_data_not_validity() {
    let cfg = SystemConfig::default();
    let bench = dmt_kernels::srad::Srad;
    for seed in [0u64, 1, 99, 12345] {
        let _ = run_checked(&bench, Arch::DmtCgra, cfg, seed);
    }
}
