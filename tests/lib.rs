//! Shared helpers for the cross-crate integration tests.

use dmt_core::{Arch, Machine, RunReport, SystemConfig};
use dmt_kernels::Benchmark;

/// Runs `bench` on `arch` with the variant that architecture supports and
/// validates the output against the CPU reference.
///
/// # Panics
///
/// Panics with context when simulation or validation fails.
#[must_use]
pub fn run_checked(bench: &dyn Benchmark, arch: Arch, cfg: SystemConfig, seed: u64) -> RunReport {
    let kernel = match arch {
        Arch::DmtCgra => bench.dmt_kernel(),
        Arch::FermiSm | Arch::MtCgra => bench.shared_kernel(),
    };
    let report = Machine::new(arch, cfg)
        .run(&kernel, bench.workload(seed).launch())
        .unwrap_or_else(|e| panic!("{} on {arch}: {e}", bench.info().name));
    bench
        .check(seed, &report.memory)
        .unwrap_or_else(|e| panic!("{} on {arch}: wrong result: {e}", bench.info().name));
    report
}
