//! Golden-output test locking the hot-spot profiler's measurements.
//!
//! The fixture pins the `profile_hotspots` report for the smoke suite —
//! per-job token totals by edge class, spill counts, calendar marks,
//! ring-occupancy maxima and the top-K node/edge rankings. The profile
//! is derived purely from simulated events, so any drift is an
//! instrumentation or simulation-semantics change, never noise. The
//! companion test pins the thread-invariance contract: observations
//! merge by job index, so the report and the artifact's `jobs` array
//! are byte-identical for any worker count.
//!
//! To regenerate after an *intentional* change:
//!
//! ```sh
//! DMT_UPDATE_GOLDEN=1 cargo test --test golden_profile
//! git diff tests/fixtures/   # review: only intended fields may move
//! ```

use dmt_bench::{profile_artifact, profile_report, run_jobs_observed, suite_jobs, SEED};
use dmt_core::SystemConfig;

/// The smoke suite (first three benchmarks × all machines) under the
/// profiler, on `threads` workers.
fn profiled(threads: usize) -> (dmt_bench::SuiteRun, Vec<dmt_obs::Obs>) {
    let jobs = suite_jobs(SystemConfig::default(), SEED, 3);
    run_jobs_observed(jobs, SEED, threads, false, true)
}

/// With `DMT_UPDATE_GOLDEN=1`, rewrites the fixture instead of comparing
/// (the test then trivially passes; review the diff before committing).
fn check_or_update(got: &str, want: &str, fixture: &str) {
    if std::env::var_os("DMT_UPDATE_GOLDEN").is_some() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(fixture);
        std::fs::write(&path, got).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("updated {}", path.display());
        return;
    }
    assert!(
        got == want,
        "profile output drifted from the golden fixture {fixture} \
         (DMT_UPDATE_GOLDEN=1 regenerates after intentional changes)\n\
         --- got ---\n{got}\n--- want ---\n{want}"
    );
}

#[test]
fn smoke_profile_report_is_byte_identical_to_fixture() {
    let (run, observations) = profiled(1);
    let got = profile_report(&run, &observations, 3);
    check_or_update(
        &got,
        include_str!("fixtures/smoke_profile.golden.txt"),
        "smoke_profile.golden.txt",
    );
}

#[test]
fn profile_is_byte_identical_across_thread_counts() {
    let (run1, obs1) = profiled(1);
    let (run4, obs4) = profiled(4);
    assert_eq!(
        profile_report(&run1, &obs1, 10),
        profile_report(&run4, &obs4, 10),
        "thread count changed the profile report"
    );
    // The artifact's deterministic half must match too; only the
    // volatile "meta" block (threads, wall time) may differ.
    let jobs = |run, obs: &[_]| {
        profile_artifact(run, obs, 10)
            .get("jobs")
            .expect("jobs array")
            .render()
    };
    assert_eq!(
        jobs(&run1, &obs1),
        jobs(&run4, &obs4),
        "thread count changed the profile artifact"
    );
}
