//! Golden-output tests locking the cycle engines' measurements in place.
//!
//! The fixtures under `tests/fixtures/` pin the smoke suite's rendered
//! Fig 11 report and the deterministic artifact `jobs` array. They were
//! first captured before the hot-path rewrite (window-indexed matching
//! stores, calendar-queue events, active-node firing) and mechanically
//! refreshed to artifact schema v2 (per-job `"phases"` arrays added;
//! every cycles/energy/totals value byte-identical to the v1 capture).
//! Any drift in cycles, stats or energy is a simulation-semantics
//! regression, not a perf improvement.
//!
//! To regenerate after an *intentional* schema or measurement change:
//!
//! ```sh
//! DMT_UPDATE_GOLDEN=1 cargo test --test golden_smoke
//! git diff tests/fixtures/   # review: only intended fields may move
//! ```

use dmt_bench::{fig11_report, run_suite_pooled, SEED};
use dmt_core::SystemConfig;

fn smoke_run() -> dmt_bench::SuiteRun {
    run_suite_pooled(SystemConfig::default(), SEED, 3, 1, None, None)
}

/// With `DMT_UPDATE_GOLDEN=1`, rewrites the fixture instead of comparing
/// (the test then trivially passes; review the diff before committing).
fn check_or_update(got: &str, want: &str, fixture: &str) {
    if std::env::var_os("DMT_UPDATE_GOLDEN").is_some() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(fixture);
        std::fs::write(&path, got).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("updated {}", path.display());
        return;
    }
    assert!(
        got == want,
        "smoke output drifted from the golden fixture {fixture} \
         (DMT_UPDATE_GOLDEN=1 regenerates after intentional changes)\n\
         --- got ---\n{got}\n--- want ---\n{want}"
    );
}

#[test]
fn smoke_artifact_jobs_array_is_byte_identical_to_fixture() {
    let run = smoke_run();
    let got = run.artifact("fig11_speedup").jobs_json().render();
    check_or_update(
        &got,
        include_str!("fixtures/smoke_jobs.golden.json"),
        "smoke_jobs.golden.json",
    );
}

#[test]
fn smoke_report_is_byte_identical_to_fixture() {
    let run = smoke_run();
    let got = fig11_report(&run.rows());
    check_or_update(
        &got,
        include_str!("fixtures/smoke_report.golden.txt"),
        "smoke_report.golden.txt",
    );
}
