//! Golden-output tests locking the cycle engines to the pre-overhaul
//! behavior.
//!
//! The fixtures under `tests/fixtures/` were captured from the engine
//! *before* the hot-path rewrite (window-indexed matching stores,
//! calendar-queue events, active-node firing): the smoke suite's rendered
//! Fig 11 report and the deterministic artifact `jobs` array. The rewrite
//! is purely structural, so both must reproduce byte-for-byte — any
//! drift in cycles, stats or energy is a simulation-semantics regression,
//! not a perf improvement.

use dmt_bench::{fig11_report, run_suite_pooled, SEED};
use dmt_core::SystemConfig;

fn smoke_run() -> dmt_bench::SuiteRun {
    run_suite_pooled(SystemConfig::default(), SEED, 3, 1, None, None)
}

#[test]
fn smoke_artifact_jobs_array_is_byte_identical_to_pre_rewrite_fixture() {
    let run = smoke_run();
    let got = run.artifact("fig11_speedup").jobs_json().render();
    let want = include_str!("fixtures/smoke_jobs.golden.json");
    assert!(
        got == want,
        "smoke jobs array drifted from the pre-rewrite engine\n\
         --- got ---\n{got}\n--- want ---\n{want}"
    );
}

#[test]
fn smoke_report_is_byte_identical_to_pre_rewrite_fixture() {
    let run = smoke_run();
    let got = fig11_report(&run.rows());
    let want = include_str!("fixtures/smoke_report.golden.txt");
    assert!(
        got == want,
        "smoke Fig 11 report drifted from the pre-rewrite engine\n\
         --- got ---\n{got}\n--- want ---\n{want}"
    );
}
