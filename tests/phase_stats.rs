//! Phase-resolved statistics invariants, property-tested across random
//! kernels and configurations on all three architectures:
//!
//! 1. `sum(per_phase) == totals` for **every** counter (asserted as one
//!    structural equality over the whole counter record, so a counter can
//!    never silently drop out of the invariant);
//! 2. one `PhaseStats` record per executed phase
//!    (`per_phase.len() == phases`);
//! 3. a single-phase kernel reports exactly one phase equal to its
//!    totals;
//! 4. per-phase cycle shares are all positive and the phase breakdown is
//!    deterministic (same run twice → same breakdown).

use dmt_core::common::geom::{Delta, Dim3};
use dmt_core::common::ids::Addr;
use dmt_core::common::stats::{PhaseStats, RunStats};
use dmt_core::{Arch, Kernel, KernelBuilder, LaunchInput, Machine, MemImage, SystemConfig, Word};
use proptest::prelude::*;

/// A shared-memory kernel with `phases` barrier-delimited phases,
/// executable on all three architectures (no inter-thread communication).
/// Each staging phase publishes a per-thread value to the scratchpad; the
/// final phase reads a neighbour's slot and writes it out.
fn staged_kernel(phases: usize, n: u32) -> Kernel {
    let mut kb = KernelBuilder::new("phase_prop", Dim3::linear(n));
    kb.set_shared_words(n);
    for stage in 0..phases.saturating_sub(1) {
        let tid = kb.thread_idx(0);
        let z = kb.const_i(0);
        let sa = kb.index_addr(z, tid, 4);
        let c = kb.const_i(stage as i32 + 1);
        let v = kb.mul_i(tid, c);
        kb.store_shared(sa, v);
        kb.barrier();
    }
    let tid = kb.thread_idx(0);
    let out = kb.param("out");
    let value = if phases > 1 {
        // Read the wrapped neighbour's slot: a classic post-barrier read.
        let one = kb.const_i(1);
        let nn = kb.const_i(n as i32);
        let z = kb.const_i(0);
        let tplus = kb.add_i(tid, one);
        let wrapped = kb.rem_i(tplus, nn);
        let sa = kb.index_addr(z, wrapped, 4);
        kb.load_shared(sa)
    } else {
        kb.mul_i(tid, tid)
    };
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, value);
    kb.finish().expect("well-formed")
}

/// A dMT kernel using an elevator (`from_thread_or_const`): the paper's
/// single-phase direct-communication shape.
fn comm_kernel(delta: i32, window: u32, n: u32) -> Kernel {
    let mut kb = KernelBuilder::new("phase_prop_comm", Dim3::linear(n));
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let a = kb.index_addr(inp, tid, 4);
    let x = kb.load_global(a);
    let v = kb.from_thread_or_const(x, Delta::new(delta), Word::from_i32(-1), Some(window));
    let s = kb.add_i(v, x);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, s);
    kb.finish().expect("well-formed")
}

/// The invariants every phase-resolved record must satisfy.
fn assert_phase_invariants(stats: &RunStats, context: &str) {
    assert!(
        !stats.per_phase.is_empty(),
        "{context}: engines must attach a phase breakdown"
    );
    assert_eq!(
        stats.per_phase.len() as u64,
        stats.phases,
        "{context}: one record per executed phase"
    );
    // One structural equality covers every counter: if any counter's
    // phase shares failed to sum to its total, the records differ.
    let mut sum = PhaseStats::default();
    for p in &stats.per_phase {
        sum.accumulate(p);
    }
    assert_eq!(
        sum,
        stats.totals(),
        "{context}: per-phase sums must equal totals for every counter"
    );
    assert!(stats.phase_sums_match(), "{context}: helper must agree");
    for (i, p) in stats.per_phase.iter().enumerate() {
        assert!(p.cycles > 0, "{context}: phase {i} has a zero cycle share");
        assert_eq!(p.phases, 1, "{context}: each record is one phase");
    }
    if stats.per_phase.len() == 1 {
        assert_eq!(
            stats.per_phase[0],
            stats.totals(),
            "{context}: a single-phase run reports one phase equal to totals"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random phase counts × thread counts × in-flight windows, on all
    /// three machines: the breakdown always sums exactly to the totals.
    #[test]
    fn per_phase_sums_equal_totals_on_every_arch(
        phases in 1usize..=3,
        n_pow in 5u32..=7,       // 32..=128 threads
        window_pow in 5u32..=9,  // in-flight window 32..=512
    ) {
        let n = 1u32 << n_pow;
        let kernel = staged_kernel(phases, n);
        let mut cfg = SystemConfig::default();
        cfg.fabric.inflight_threads = 1 << window_pow;
        for arch in Arch::ALL {
            let report = Machine::new(arch, cfg)
                .run(
                    &kernel,
                    LaunchInput::new(
                        vec![Word::from_u32(0)],
                        MemImage::with_words(n as usize),
                    ),
                )
                .expect("feasible");
            let ctx = format!("{arch} phases={phases} n={n} window=2^{window_pow}");
            assert_phase_invariants(&report.stats, &ctx);
            prop_assert_eq!(report.stats.phases, phases as u64);
        }
    }

    /// Elevator kernels (dMT-CGRA only): single-phase streaming with
    /// random ΔTID and transmission windows, including LVC-spill ranges.
    #[test]
    fn comm_kernel_phase_breakdown_is_exact_and_deterministic(
        delta in (-24i32..=24).prop_filter("non-zero", |d| *d != 0),
        window_pow in 3u32..=7, // windows 8..=128
        data in proptest::collection::vec(-1000i32..1000, 128),
    ) {
        let n = 128u32;
        let window = 1u32 << window_pow;
        prop_assume!(delta.unsigned_abs() < window);
        let kernel = comm_kernel(delta, window, n);
        let run = || {
            let mut mem = MemImage::with_words(2 * n as usize);
            mem.write_i32_slice(Addr(0), &data);
            Machine::new(Arch::DmtCgra, SystemConfig::default())
                .run(
                    &kernel,
                    LaunchInput::new(
                        vec![Word::from_u32(0), Word::from_u32(4 * n)],
                        mem,
                    ),
                )
                .expect("feasible")
                .stats
        };
        let stats = run();
        assert_phase_invariants(&stats, &format!("dMT delta={delta} window={window}"));
        prop_assert_eq!(&stats, &run());
    }
}
