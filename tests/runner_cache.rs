//! The result cache's central contracts, exercised over the CI smoke
//! grid (first three Table 3 benchmarks × all three machines — exactly
//! what `fig11_speedup --smoke --json` runs):
//!
//! 1. a warm-cache rerun performs **zero simulations** yet produces
//!    byte-identical stdout (the Fig 11 report) and artifact JSON;
//! 2. corrupted or truncated cache entries are ignored and recomputed,
//!    never trusted and never fatal;
//! 3. an interrupted run resumes: only the jobs missing from the cache
//!    are re-executed;
//! 4. a schema bump invalidates a warm directory as counted misses (no
//!    parse errors), and the rerun rewrites it at the current version —
//!    the designed v1 → v2 migration path;
//! 5. degraded operation: an unusable cache directory, an ENOSPC-style
//!    write fault and a rename fault each produce counted misses or
//!    store failures — never an abort — and the run's artifacts stay
//!    byte-identical to an undisturbed run.
//!
//! Simulations are counted by instrumenting the executor around
//! `dmt_bench::execute_job` — the same leaf the binaries use — so "zero
//! simulations" is asserted directly, not inferred from timing.

use dmt_bench::{execute_job, fig11_report, run_suite_pooled, suite_jobs, RowOutcome, SEED};
use dmt_core::SystemConfig;
use dmt_runner::{Artifact, Cache, ExecPlan, JobOutcome, JobSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique, empty scratch directory per test (tests share one process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmt_runner_cache_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the smoke grid through the cache with an instrumented executor,
/// returning the outcomes and the number of real simulations performed.
fn smoke_run(jobs: &[JobSpec], cache: &Cache) -> (Vec<JobOutcome>, usize) {
    let sims = AtomicUsize::new(0);
    let outcomes = ExecPlan::new(jobs)
        .threads(2)
        .cache(Some(cache))
        .run(|spec| {
            sims.fetch_add(1, Ordering::Relaxed);
            execute_job(spec)
        });
    (outcomes, sims.load(Ordering::Relaxed))
}

/// Renders exactly what `fig11_speedup --smoke` prints to stdout and
/// what `--json` writes, with the volatile wall-clock pinned so the
/// comparison covers every byte.
fn fig11_outputs(jobs: &[JobSpec], outcomes: &[JobOutcome]) -> (String, String) {
    let rows = RowOutcome::from_jobs(jobs, outcomes);
    let stdout = fig11_report(&rows);
    let artifact = Artifact::new(
        "fig11_speedup",
        2,
        0,
        SEED,
        jobs.to_vec(),
        outcomes.to_vec(),
    );
    (stdout, artifact.to_json().render())
}

#[test]
fn warm_rerun_simulates_nothing_and_matches_the_cold_run_byte_for_byte() {
    let dir = scratch("warm");
    let jobs = suite_jobs(SystemConfig::default(), SEED, 3);

    let cold_cache = Cache::open(&dir).unwrap();
    let (cold, cold_sims) = smoke_run(&jobs, &cold_cache);
    assert_eq!(cold_sims, jobs.len(), "cold cache must simulate every job");
    assert_eq!(cold_cache.stats().hits, 0);
    assert_eq!(cold_cache.stats().stores, jobs.len() as u64);

    let warm_cache = Cache::open(&dir).unwrap();
    let (warm, warm_sims) = smoke_run(&jobs, &warm_cache);
    assert_eq!(warm_sims, 0, "warm cache must perform zero simulations");
    assert_eq!(warm_cache.stats().hits, jobs.len() as u64);
    assert_eq!(warm_cache.stats().misses, 0);

    let (cold_stdout, cold_artifact) = fig11_outputs(&jobs, &cold);
    let (warm_stdout, warm_artifact) = fig11_outputs(&jobs, &warm);
    assert_eq!(cold_stdout, warm_stdout, "stdout must be byte-identical");
    assert_eq!(
        cold_artifact, warm_artifact,
        "artifact JSON must be byte-identical"
    );

    // The same contract through the binaries' actual entry point.
    let pooled = run_suite_pooled(
        SystemConfig::default(),
        SEED,
        3,
        4,
        None,
        Some(&Cache::open(&dir).unwrap()),
    );
    assert_eq!(pooled.outcomes, cold);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_and_truncated_entries_are_ignored_and_recomputed() {
    let dir = scratch("corrupt");
    let jobs = suite_jobs(SystemConfig::default(), SEED, 3);

    let cache = Cache::open(&dir).unwrap();
    let (cold, _) = smoke_run(&jobs, &cache);

    // Truncate one entry mid-document, corrupt another into non-JSON,
    // and retarget a third at the wrong schema version.
    let e0 = cache.entry_path(&jobs[0]);
    let text = std::fs::read_to_string(&e0).unwrap();
    std::fs::write(&e0, &text[..text.len() / 2]).unwrap();
    std::fs::write(cache.entry_path(&jobs[4]), "not json at all").unwrap();
    let e8 = cache.entry_path(&jobs[8]);
    let text = std::fs::read_to_string(&e8).unwrap();
    let current = format!(
        "\"schema_version\": {}",
        dmt_runner::artifact::SCHEMA_VERSION
    );
    assert!(text.contains(&current), "entry must carry the version");
    std::fs::write(&e8, text.replace(&current, "\"schema_version\": 999")).unwrap();

    let warm = Cache::open(&dir).unwrap();
    let (repaired, sims) = smoke_run(&jobs, &warm);
    assert_eq!(sims, 3, "exactly the three defective entries re-simulate");
    assert_eq!(warm.stats().misses, 3);
    assert_eq!(warm.stats().hits, jobs.len() as u64 - 3);
    assert_eq!(repaired, cold, "recomputed outcomes match the originals");

    // The defective entries were rewritten: a third pass is all hits.
    let (again, sims) = smoke_run(&jobs, &Cache::open(&dir).unwrap());
    assert_eq!(sims, 0);
    assert_eq!(again, cold);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v1_cache_entries_are_invalidated_as_miss_and_rewritten_as_v2() {
    use dmt_runner::artifact::{Json, SCHEMA_VERSION};

    let dir = scratch("v1_migration");
    let jobs = suite_jobs(SystemConfig::default(), SEED, 3);
    let cache = Cache::open(&dir).unwrap();
    let (cold, _) = smoke_run(&jobs, &cache);

    // Downgrade every entry to schema v1: version field rewritten, the
    // per-job "phases" array dropped — exactly the shape the v1 writer
    // produced (v2 added "phases" and changed nothing else per job).
    for job in &jobs {
        let path = cache.entry_path(job);
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let Json::Obj(entries) = doc else {
            panic!("entry is not an object")
        };
        let v1 = Json::Obj(
            entries
                .into_iter()
                .filter(|(k, _)| k != "phases")
                .map(|(k, v)| {
                    if k == "schema_version" {
                        (k, Json::U64(1))
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        );
        std::fs::write(&path, v1.render()).unwrap();
    }

    // A warm v1 directory under the v2 binary: no parse error aborts the
    // run — every entry is a counted schema-invalidated miss, every job
    // recomputes, and the outcomes match the original cold run.
    let warm = Cache::open(&dir).unwrap();
    let (migrated, sims) = smoke_run(&jobs, &warm);
    assert_eq!(sims, jobs.len(), "every v1 entry must re-simulate");
    assert_eq!(warm.stats().hits, 0);
    assert_eq!(warm.stats().misses, jobs.len() as u64);
    assert_eq!(
        warm.stats().schema_invalidated,
        jobs.len() as u64,
        "v1 entries are specifically schema-invalidated, not generic misses"
    );
    assert_eq!(warm.stats().stores, jobs.len() as u64);
    assert_eq!(migrated, cold);

    // The directory is now v2-populated: a third pass is all hits with
    // zero schema invalidations, and every entry carries the current
    // version plus a non-empty phases array that sums to its totals.
    let third = Cache::open(&dir).unwrap();
    let (again, sims) = smoke_run(&jobs, &third);
    assert_eq!(sims, 0, "migrated cache must be fully warm");
    assert_eq!(third.stats().schema_invalidated, 0);
    assert_eq!(again, cold);
    for job in &jobs {
        let doc = Json::parse(&std::fs::read_to_string(cache.entry_path(job)).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        assert!(!phases.is_empty(), "rewritten entries carry phases");
        let totals = doc.get("stats").unwrap().get("cycles").unwrap().as_u64();
        let sum: u64 = phases
            .iter()
            .map(|p| p.get("cycles").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(Some(sum), totals, "phase cycles sum to the job's cycles");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic stub executor for the degradation tests: a pure
/// function of the spec, so artifact byte-identity is checkable without
/// paying for real simulations inside fault windows.
fn stub(spec: &JobSpec) -> JobOutcome {
    JobOutcome::completed(dmt_runner::JobMetrics {
        kernel: spec.bench.clone(),
        stats: dmt_common::stats::RunStats {
            cycles: spec.job_hash() % 10_000 + 1,
            ..Default::default()
        },
        energy: dmt_core::energy::EnergyReport::default(),
    })
}

/// The deterministic artifact bytes of a (jobs, outcomes) pair.
fn artifact_bytes(jobs: &[JobSpec], outcomes: &[JobOutcome]) -> String {
    Artifact::new("degraded", 1, 0, SEED, jobs.to_vec(), outcomes.to_vec())
        .jobs_json()
        .render()
}

#[test]
fn unusable_cache_dir_degrades_to_counted_no_cache_operation() {
    // A *file* where the cache directory should go: `open` would error,
    // `open_or_degraded` hands back a no-I/O handle instead. (Permission
    // bits can't model this under root, which ignores them.)
    let parent = scratch("degraded");
    std::fs::create_dir_all(&parent).unwrap();
    let blocker = parent.join("cache");
    std::fs::write(&blocker, "a file, not a directory").unwrap();

    let jobs = suite_jobs(SystemConfig::default(), SEED, 3);
    let baseline: Vec<JobOutcome> = ExecPlan::new(&jobs).run(stub);

    let cache = Cache::open_or_degraded(&blocker);
    assert!(cache.is_degraded());
    for pass in 0..2 {
        let outcomes = ExecPlan::new(&jobs).cache(Some(&cache)).run(stub);
        assert_eq!(
            artifact_bytes(&jobs, &outcomes),
            artifact_bytes(&jobs, &baseline),
            "pass {pass}: degraded artifacts must match the uncached run"
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.hits, 0, "a degraded handle never hits");
    assert_eq!(stats.misses, 2 * jobs.len() as u64, "every lookup counted");
    assert_eq!(stats.stores, 0, "nothing may reach the disk");
    assert_eq!(stats.store_failures, 2 * jobs.len() as u64);
    let _ = std::fs::remove_dir_all(&parent);
}

#[test]
fn write_and_rename_faults_cost_one_counted_miss_each_not_the_run() {
    use dmt_common::faults::{install_guarded, FaultPlan};

    let jobs = suite_jobs(SystemConfig::default(), SEED, 3);
    let baseline: Vec<JobOutcome> = ExecPlan::new(&jobs).run(stub);
    let base_bytes = artifact_bytes(&jobs, &baseline);

    // ENOSPC-style temp-file write fault, then a rename (publish) fault:
    // each fails exactly one store mid-run. The run's outcomes and
    // artifacts are untouched; the failed entry is simply absent, so a
    // warm rerun re-simulates exactly that one job as a counted miss.
    for (spec, tag) in [
        ("cache.write:nth=3", "write_fault"),
        ("cache.rename:nth=7", "rename_fault"),
    ] {
        let dir = scratch(tag);
        let cache = Cache::open(&dir).unwrap();
        let outcomes = {
            let _guard = install_guarded(FaultPlan::parse(spec).unwrap());
            ExecPlan::new(&jobs).cache(Some(&cache)).run(stub)
        };
        assert_eq!(
            artifact_bytes(&jobs, &outcomes),
            base_bytes,
            "{spec}: a failed store must not change the run's artifacts"
        );
        assert_eq!(cache.stats().store_failures, 1, "{spec}");
        assert_eq!(cache.stats().stores, jobs.len() as u64 - 1, "{spec}");

        // Fault window closed: the rerun serves the surviving entries
        // and re-executes only the one whose store failed.
        let warm = Cache::open(&dir).unwrap();
        let (repaired, sims) = smoke_run_with(&jobs, &warm, stub);
        assert_eq!(sims, 1, "{spec}: exactly the lost entry re-simulates");
        assert_eq!(warm.stats().misses, 1, "{spec}");
        assert_eq!(warm.stats().hits, jobs.len() as u64 - 1, "{spec}");
        assert_eq!(artifact_bytes(&jobs, &repaired), base_bytes, "{spec}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// [`smoke_run`] with a caller-chosen executor.
fn smoke_run_with(
    jobs: &[JobSpec],
    cache: &Cache,
    exec: fn(&JobSpec) -> JobOutcome,
) -> (Vec<JobOutcome>, usize) {
    let sims = AtomicUsize::new(0);
    let outcomes = ExecPlan::new(jobs).cache(Some(cache)).run(|spec| {
        sims.fetch_add(1, Ordering::Relaxed);
        exec(spec)
    });
    (outcomes, sims.load(Ordering::Relaxed))
}

#[test]
fn interrupted_run_resumes_only_the_missing_jobs() {
    let dir = scratch("resume");

    // "Interrupted" run: only the first two suite rows ever completed
    // (entries are persisted per job as each finishes, so a kill leaves
    // exactly the completed prefix-set behind).
    let partial = suite_jobs(SystemConfig::default(), SEED, 2);
    let (_, sims) = smoke_run(&partial, &Cache::open(&dir).unwrap());
    assert_eq!(sims, partial.len());

    // The restarted full smoke run re-executes only the third row.
    let full = suite_jobs(SystemConfig::default(), SEED, 3);
    let cache = Cache::open(&dir).unwrap();
    let (outcomes, sims) = smoke_run(&full, &cache);
    assert_eq!(sims, full.len() - partial.len());
    assert_eq!(cache.stats().hits, partial.len() as u64);
    assert!(outcomes.iter().all(|o| o.metrics().is_some()));

    // And the cost index now ranks every completed point for
    // longest-job-first scheduling of future sweeps.
    let index = cache.cost_index();
    for job in &full {
        let est = index.estimate(job).expect("every point indexed");
        assert_eq!(
            est,
            outcomes[full.iter().position(|j| j == job).unwrap()]
                .metrics()
                .unwrap()
                .cycles()
        );
    }
    let order = dmt_runner::cache::cost_order(&full.iter().collect::<Vec<_>>(), &index);
    let costs: Vec<u64> = order
        .iter()
        .map(|&i| index.estimate(&full[i]).unwrap())
        .collect();
    assert!(
        costs.windows(2).all(|w| w[0] >= w[1]),
        "schedule must be longest-first: {costs:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
