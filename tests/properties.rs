//! Property-based tests over the communication machinery: for arbitrary
//! deltas, windows and inputs, the cycle-level fabric must agree with the
//! functional interpreter, and the elevator algebra must deliver exactly
//! one token per thread.

use dmt_core::common::geom::{Delta, Dim3};
use dmt_core::common::ids::Addr;
use dmt_core::dfg::node::CommConfig;
use dmt_core::{
    compiler,
    dfg::interp,
    fabric::{DeliveryMode, FabricMachine, FireMode},
    Kernel, KernelBuilder, LaunchInput, MemImage, SystemConfig, Word,
};
use proptest::prelude::*;

fn comm_kernel(delta: i32, window: u32, n: u32) -> Kernel {
    let mut kb = KernelBuilder::new("prop_comm", Dim3::linear(n));
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let a = kb.index_addr(inp, tid, 4);
    let x = kb.load_global(a);
    let v = kb.from_thread_or_const(x, Delta::new(delta), Word::from_i32(-1), Some(window));
    let s = kb.add_i(v, x);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, s);
    kb.finish().expect("well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fabric == interpreter for arbitrary (delta, window) combinations.
    #[test]
    fn fabric_matches_interp_for_any_comm_pattern(
        delta in (-24i32..=24).prop_filter("non-zero", |d| *d != 0),
        window_pow in 3u32..=7, // windows 8..=128
        data in proptest::collection::vec(-1000i32..1000, 128),
    ) {
        let n = 128u32;
        let window = 1u32 << window_pow;
        prop_assume!((delta.unsigned_abs()) < window);
        let kernel = comm_kernel(delta, window, n);
        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_i32_slice(Addr(0), &data);
        let params = vec![Word::from_u32(0), Word::from_u32(4 * n)];

        let oracle = interp::run_ref(&kernel, &params, &mem).expect("interp");
        let cfg = SystemConfig::default();
        let program = compiler::compile(&kernel, &cfg).expect("compiles");
        let run = FabricMachine::new(cfg)
            .run(&program, LaunchInput::new(params, mem))
            .expect("fabric");
        prop_assert_eq!(run.memory, oracle.memory);
    }

    /// Fabric == interpreter under every fire × delivery mode combination:
    /// forcing block-fire (below its auto threshold) or per-token paths must
    /// never change a byte of memory, and all four combinations must agree
    /// on the cycle-level `RunStats` too — batching is a pure reordering.
    #[test]
    fn fire_and_delivery_modes_agree_for_any_comm_pattern(
        delta in (-24i32..=24).prop_filter("non-zero", |d| *d != 0),
        window_pow in 3u32..=7, // windows 8..=128
        data in proptest::collection::vec(-1000i32..1000, 128),
    ) {
        let n = 128u32;
        let window = 1u32 << window_pow;
        prop_assume!((delta.unsigned_abs()) < window);
        let kernel = comm_kernel(delta, window, n);
        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_i32_slice(Addr(0), &data);
        let params = vec![Word::from_u32(0), Word::from_u32(4 * n)];

        let oracle = interp::run_ref(&kernel, &params, &mem).expect("interp");
        let cfg = SystemConfig::default();
        let program = compiler::compile(&kernel, &cfg).expect("compiles");
        let mut baseline_stats = None;
        for fire in [FireMode::Batched, FireMode::Unbatched] {
            for delivery in [DeliveryMode::Batched, DeliveryMode::Unbatched] {
                let run = FabricMachine::with_modes(cfg, fire, delivery)
                    .run(&program, LaunchInput::new(params.clone(), mem.clone()))
                    .expect("fabric");
                prop_assert_eq!(
                    &run.memory, &oracle.memory,
                    "memory diverged under fire {:?} / delivery {:?}", fire, delivery
                );
                match &baseline_stats {
                    None => baseline_stats = Some(run.stats),
                    Some(stats) => prop_assert_eq!(
                        stats, &run.stats,
                        "stats diverged under fire {:?} / delivery {:?}", fire, delivery
                    ),
                }
            }
        }
    }

    /// Every thread receives exactly one token from an elevator: either a
    /// forwarded value or the fallback constant (Fig 8 batch semantics).
    #[test]
    fn elevator_algebra_delivers_exactly_one_token_per_thread(
        shift in (-64i64..=64).prop_filter("non-zero", |s| *s != 0),
        window in 2u32..=256,
        threads in 1u32..=512,
    ) {
        prop_assume!(shift.unsigned_abs() < u64::from(window));
        let comm = CommConfig { shift, delta: Delta::new(-(shift as i32)), window };
        for t in 0..threads {
            let forwarded = comm.source_of(t, threads).is_some();
            // A thread gets the fallback exactly when it has no source.
            let _gets_const = !forwarded;
            // Sources and targets must be mutually consistent.
            if let Some(src) = comm.source_of(t, threads) {
                prop_assert_eq!(comm.target_of(src, threads), Some(t));
            }
            if let Some(dst) = comm.target_of(t, threads) {
                prop_assert_eq!(comm.source_of(dst, threads), Some(t));
            }
        }
        // Token conservation: #targets == #sources.
        let produced = (0..threads).filter(|&t| comm.target_of(t, threads).is_some()).count();
        let consumed = (0..threads).filter(|&t| comm.source_of(t, threads).is_some()).count();
        prop_assert_eq!(produced, consumed);
    }

    /// Prefix sums through the recurrent chain are correct for arbitrary
    /// inputs (wrapping arithmetic).
    #[test]
    fn recurrent_scan_is_correct_for_any_input(
        data in proptest::collection::vec(any::<i32>(), 64),
    ) {
        let n = 64u32;
        let mut kb = KernelBuilder::new("prop_scan", Dim3::linear(n));
        let inp = kb.param("in");
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let a = kb.index_addr(inp, tid, 4);
        let x = kb.load_global(a);
        let (prev, rec) = kb.recurrent_from_thread_or_const(
            Delta::new(-1), Word::from_i32(0), None);
        let s = kb.add_i(prev, x);
        kb.close_recurrence(rec, s);
        let oa = kb.index_addr(out, tid, 4);
        kb.store_global(oa, s);
        let kernel = kb.finish().expect("well-formed");

        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_i32_slice(Addr(0), &data);
        let cfg = SystemConfig::default();
        let program = compiler::compile(&kernel, &cfg).expect("compiles");
        let run = FabricMachine::new(cfg)
            .run(&program, LaunchInput::new(
                vec![Word::from_u32(0), Word::from_u32(4 * n)], mem))
            .expect("fabric");
        let got = run.memory.read_i32_slice(Addr(4 * n as u64), n as usize);
        let mut acc = 0i32;
        for (i, &v) in data.iter().enumerate() {
            acc = acc.wrapping_add(v);
            prop_assert_eq!(got[i], acc, "index {}", i);
        }
    }
}

/// `result[tid] = in[tid/win]`, loaded once per window group by its
/// leader and forwarded to the rest through a windowed eLDST.
fn eldst_kernel(win: u32, n: u32) -> Kernel {
    let mut kb = KernelBuilder::new("prop_eldst", Dim3::linear(n));
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let w = kb.const_i(win as i32);
    let lane = kb.rem_i(tid, w);
    let zero = kb.const_i(0);
    let is_leader = kb.eq_i(lane, zero);
    let group = kb.div_i(tid, w);
    let ga = kb.index_addr(inp, group, 4);
    let v = kb.from_thread_or_mem(ga, is_leader, Delta::new(-1), Some(win));
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, v);
    kb.finish().expect("well-formed")
}

// Differential stress for the hot-path engine structures: small in-flight
// windows exercise the ring-indexed matching stores right at (and past)
// their sizing bound, and replication exercises multi-fire on the
// active-node worklist. The optimized `FabricMachine` must agree with the
// reference interpreter on the final memory image *and* be cycle-exactly
// deterministic at every point.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Elevator kernels across (ΔTID, transmission window) × in-flight
    /// window × replication: memory equals the interpreter, cycle counts
    /// repeat exactly.
    #[test]
    fn fabric_matches_interp_under_window_and_replication(
        delta in (-6i32..=6).prop_filter("non-zero", |d| *d != 0),
        window_pow in 2u32..=6, // transmission windows 4..=64
        inflight_sel in 0usize..5,
        replication in 1u32..=4,
        data in proptest::collection::vec(-1000i32..1000, 64),
    ) {
        let n = 64u32;
        let window = 1u32 << window_pow;
        let inflight = [8u32, 16, 64, 512, 2048][inflight_sel];
        prop_assume!(delta.unsigned_abs() < window);
        let kernel = comm_kernel(delta, window, n);
        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_i32_slice(Addr(0), &data);
        let params = vec![Word::from_u32(0), Word::from_u32(4 * n)];

        let oracle = interp::run_ref(&kernel, &params, &mem).expect("interp");
        let mut cfg = SystemConfig::default();
        cfg.fabric.inflight_threads = inflight;
        let mut program = compiler::compile(&kernel, &cfg).expect("compiles");
        program.replication = replication;
        let machine = FabricMachine::new(cfg);
        let run = || {
            machine
                .run(&program, LaunchInput::new(params.clone(), mem.clone()))
                .expect("fabric")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.memory, &oracle.memory, "fabric diverges from interpreter");
        prop_assert_eq!(a.stats.cycles, b.stats.cycles, "nondeterministic cycles");
        prop_assert_eq!(a.stats, b.stats, "nondeterministic stats");
    }

    /// Windowed eLDST forwarding under small in-flight windows and
    /// replication: the token-buffer ring (forward values + parked
    /// threads) must preserve exact semantics.
    #[test]
    fn fabric_matches_interp_for_windowed_eldst(
        win_pow in 1u32..=4, // groups of 2..=16
        inflight_sel in 0usize..3,
        replication in 1u32..=3,
        data in proptest::collection::vec(-1000i32..1000, 32),
    ) {
        let n = 64u32;
        let win = 1u32 << win_pow;
        let inflight = [8u32, 32, 2048][inflight_sel];
        let groups = (n / win) as usize;
        let kernel = eldst_kernel(win, n);
        let mut mem = MemImage::with_words(groups + n as usize);
        mem.write_i32_slice(Addr(0), &data[..groups]);
        let params = vec![Word::from_u32(0), Word::from_u32(4 * groups as u32)];

        let oracle = interp::run_ref(&kernel, &params, &mem).expect("interp");
        let mut cfg = SystemConfig::default();
        cfg.fabric.inflight_threads = inflight;
        let mut program = compiler::compile(&kernel, &cfg).expect("compiles");
        program.replication = replication;
        let machine = FabricMachine::new(cfg);
        let run = || {
            machine
                .run(&program, LaunchInput::new(params.clone(), mem.clone()))
                .expect("fabric")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.memory, &oracle.memory, "fabric diverges from interpreter");
        prop_assert_eq!(a.stats.cycles, b.stats.cycles, "nondeterministic cycles");
        prop_assert_eq!(
            a.stats.global_loads, u64::from(n / win),
            "one load per window group"
        );
    }

    /// Edge-batched delivery is a pure scheduling change: for arbitrary
    /// communication patterns and replications (both sides of the
    /// profitability threshold), the forced-batched and forced-per-token
    /// engines produce identical memory images and identical statistics —
    /// every counter, cycle-exact — and both match the interpreter.
    #[test]
    fn batched_delivery_is_byte_identical_to_per_token(
        delta in (-6i32..=6).prop_filter("non-zero", |d| *d != 0),
        window_pow in 2u32..=6, // transmission windows 4..=64
        replication in 1u32..=16,
        data in proptest::collection::vec(-1000i32..1000, 64),
    ) {
        let n = 64u32;
        let window = 1u32 << window_pow;
        prop_assume!(delta.unsigned_abs() < window);
        let kernel = comm_kernel(delta, window, n);
        let mut mem = MemImage::with_words(2 * n as usize);
        mem.write_i32_slice(Addr(0), &data);
        let params = vec![Word::from_u32(0), Word::from_u32(4 * n)];

        let oracle = interp::run_ref(&kernel, &params, &mem).expect("interp");
        let cfg = SystemConfig::default();
        let mut program = compiler::compile(&kernel, &cfg).expect("compiles");
        program.replication = replication;
        let batched = FabricMachine::with_batched_delivery(cfg)
            .run(&program, LaunchInput::new(params.clone(), mem.clone()))
            .expect("batched fabric");
        let unbatched = FabricMachine::with_unbatched_delivery(cfg)
            .run(&program, LaunchInput::new(params.clone(), mem.clone()))
            .expect("unbatched fabric");
        prop_assert_eq!(&batched.memory, &oracle.memory, "batched diverges from interpreter");
        prop_assert_eq!(&batched.memory, &unbatched.memory, "delivery paths disagree on memory");
        prop_assert_eq!(&batched.stats, &unbatched.stats, "delivery paths disagree on stats");
    }
}
