//! Token-storm coverage for edge-batched delivery: many threads, a tiny
//! graph, one hot edge.
//!
//! A small kernel compiles at the replication cap (16 graph copies), so a
//! firing load node emits up to 16 tokens per cycle down the *same* edge —
//! exactly the traffic pattern the edge-batched delivery path in
//! `dmt-fabric` coalesces into one calendar event per `(edge, cycle)`.
//! The golden fixture pins the storm's cycles, token counters and output
//! checksum on all three backends; the differential tests assert the
//! batched and per-token delivery paths are cycle- and byte-identical
//! (they share `tests/fixtures/token_storm.golden.txt` regeneration via
//! `DMT_UPDATE_GOLDEN=1`, like `tests/golden_smoke.rs`).

use dmt_core::common::geom::Dim3;
use dmt_core::common::ids::Addr;
use dmt_core::fabric::{DeliveryMode, FabricMachine, FireMode, BATCH_MIN_REPLICATION};
use dmt_core::{
    compiler, dfg::interp, Arch, Kernel, KernelBuilder, LaunchInput, Machine, MemImage,
    SystemConfig, Word,
};
use dmt_obs::{Obs, TraceEvent};

const THREADS: u32 = 512;

/// `out[tid] = tid*tid + tid` over a five-node graph: the thread-id value
/// fans out to both multiplier inputs, the adder and the address
/// computation, so each of its out-edges carries one token per thread —
/// `THREADS` tokens through a handful of edges, the storm the batcher
/// must keep in per-edge FIFO order. Deliberately store-only: a single
/// load/store unit keeps the graph tiny enough to replicate past the
/// batching threshold (`storm_compiles_past_the_batching_threshold`).
fn storm_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("token_storm", Dim3::linear(THREADS));
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let sq = kb.mul_i(tid, tid);
    let s = kb.add_i(sq, tid);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, s);
    kb.finish().expect("token-storm kernel is well-formed")
}

fn storm_input() -> (Vec<Word>, MemImage) {
    (
        vec![Word::from_u32(0)],
        MemImage::with_words(THREADS as usize),
    )
}

fn output_checksum(mem: &MemImage) -> u64 {
    mem.read_i32_slice(Addr(0), THREADS as usize)
        .iter()
        .fold(0u64, |h, &v| h.rotate_left(5) ^ u64::from(v as u32))
}

/// With `DMT_UPDATE_GOLDEN=1`, rewrites the fixture instead of comparing
/// (the test then trivially passes; review the diff before committing).
fn check_or_update(got: &str, want: &str, fixture: &str) {
    if std::env::var_os("DMT_UPDATE_GOLDEN").is_some() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(fixture);
        std::fs::write(&path, got).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("updated {}", path.display());
        return;
    }
    assert!(
        got == want,
        "token-storm output drifted from the golden fixture {fixture} \
         (DMT_UPDATE_GOLDEN=1 regenerates after intentional changes)\n\
         --- got ---\n{got}\n--- want ---\n{want}"
    );
}

/// The storm on all three backends, pinned byte-for-byte: simulated
/// cycles, the token-traffic counters the batcher touches, and the
/// output checksum.
#[test]
fn storm_report_is_byte_identical_to_fixture() {
    let kernel = storm_kernel();
    let cfg = SystemConfig::default();
    let mut got = format!("token_storm threads={THREADS}\n");
    for arch in Arch::ALL {
        let (params, mem) = storm_input();
        let report = Machine::new(arch, cfg)
            .run(&kernel, LaunchInput::new(params, mem))
            .unwrap_or_else(|e| panic!("token_storm on {arch}: {e}"));
        let s = &report.stats;
        got.push_str(&format!(
            "{:<8} cycles={} tokens_routed={} noc_hops={} token_buffer_writes={} \
             threads_retired={} checksum={:#018x}\n",
            arch.key(),
            s.cycles,
            s.tokens_routed,
            s.noc_hops,
            s.token_buffer_writes,
            s.threads_retired,
            output_checksum(&report.memory),
        ));
    }
    check_or_update(
        &got,
        include_str!("fixtures/token_storm.golden.txt"),
        "token_storm.golden.txt",
    );
}

/// The storm graph is small enough to replicate at the cap, which is past
/// the profitability threshold — the default (Auto) machine really does
/// take the batched path on this fixture.
#[test]
fn storm_compiles_past_the_batching_threshold() {
    let cfg = SystemConfig::default();
    let program = compiler::compile(&storm_kernel(), &cfg).expect("compiles");
    assert!(
        program.replication >= BATCH_MIN_REPLICATION,
        "storm replication {} is below the batching threshold {}; the \
         fixture no longer exercises edge-batched delivery",
        program.replication,
        BATCH_MIN_REPLICATION
    );
}

/// Forced-batched and forced-per-token delivery agree with each other —
/// and with the functional interpreter — on memory, statistics (every
/// counter, per phase) and cycles.
#[test]
fn batched_and_unbatched_delivery_are_byte_identical() {
    let kernel = storm_kernel();
    let cfg = SystemConfig::default();
    let program = compiler::compile(&kernel, &cfg).expect("compiles");
    let (params, mem) = storm_input();

    let oracle = interp::run_ref(&kernel, &params, &mem).expect("interp");
    let batched = FabricMachine::with_batched_delivery(cfg)
        .run(&program, LaunchInput::new(params.clone(), mem.clone()))
        .expect("batched run");
    let unbatched = FabricMachine::with_unbatched_delivery(cfg)
        .run(&program, LaunchInput::new(params, mem))
        .expect("unbatched run");

    assert_eq!(
        batched.memory, oracle.memory,
        "batched diverges from interpreter"
    );
    assert_eq!(
        batched.memory, unbatched.memory,
        "delivery paths disagree on memory"
    );
    assert_eq!(
        batched.stats, unbatched.stats,
        "delivery paths disagree on statistics"
    );
}

/// The profiler's per-edge token aggregates and the tracer's sampled
/// token-window counters are two views of the same event stream: the
/// per-edge totals must equal the per-class totals, and the sampled
/// windows plus the final unflushed window must account for every token
/// — with batched delivery exactly as with per-token delivery (a
/// coalesced delivery reports once per *token*, never once per batch).
#[test]
fn profile_and_tracer_token_counts_agree() {
    let kernel = elevator_kernel();
    let cfg = SystemConfig::default();
    let program = compiler::compile(&kernel, &cfg).expect("compiles");
    let mut totals = Vec::new();
    for batched in [true, false] {
        let machine = if batched {
            FabricMachine::with_batched_delivery(cfg)
        } else {
            FabricMachine::with_unbatched_delivery(cfg)
        };
        let (params, mem) = elevator_input();
        let mut obs = Obs::new(true, true);
        machine
            .run_observed(&program, LaunchInput::new(params, mem), &mut obs)
            .expect("observed run");

        let per_class: u64 = obs.profile.class_tokens.iter().sum();
        let per_edge: u64 = obs.profile.edge_tokens.values().sum();
        let sampled: u64 = obs
            .tracer
            .events()
            .filter_map(|e| match e {
                TraceEvent::Sample {
                    direct,
                    elevator,
                    eldst,
                    ..
                } => Some(direct + elevator + eldst),
                _ => None,
            })
            .sum();
        let pending: u64 = obs.pending_window_tokens().iter().sum();
        assert!(per_class > 0, "storm produced no tokens");
        assert_eq!(
            per_edge, per_class,
            "per-edge and per-class profile totals disagree (batched={batched})"
        );
        assert_eq!(
            sampled + pending,
            per_class,
            "tracer windows lose or double-count tokens (batched={batched})"
        );
        assert_eq!(obs.tracer.dropped(), 0, "ring overflow would void the sum");
        totals.push(per_class);
    }
    assert_eq!(
        totals[0], totals[1],
        "batched and per-token runs observe different token totals"
    );
}

/// The storm through an elevator: each thread receives its left
/// neighbour's loaded value, so the hot edges cross the re-tagging path
/// (dMT-only; the elevator's fan-in/fan-out edges batch like any other).
fn elevator_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("token_storm_elev", Dim3::linear(THREADS));
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let a = kb.index_addr(inp, tid, 4);
    let x = kb.load_global(a);
    let prev = kb.from_thread_or_const(
        x,
        dmt_core::common::geom::Delta::new(-1),
        Word::from_i32(0),
        Some(64),
    );
    let s = kb.add_i(prev, x);
    let oa = kb.index_addr(out, tid, 4);
    kb.store_global(oa, s);
    kb.finish().expect("well-formed")
}

fn elevator_input() -> (Vec<Word>, MemImage) {
    // Deterministic, sign-mixed data (no RNG needed for a fixture).
    let data: Vec<i32> = (0..THREADS as i32)
        .map(|i| (i.wrapping_mul(2_654_435_761u32 as i32)) >> 16)
        .collect();
    let mut mem = MemImage::with_words(2 * THREADS as usize);
    mem.write_i32_slice(Addr(0), &data);
    (vec![Word::from_u32(0), Word::from_u32(4 * THREADS)], mem)
}

#[test]
fn delivery_paths_agree_on_an_elevator_storm() {
    let kernel = elevator_kernel();
    let cfg = SystemConfig::default();
    let program = compiler::compile(&kernel, &cfg).expect("compiles");
    let (params, mem) = elevator_input();
    let oracle = interp::run_ref(&kernel, &params, &mem).expect("interp");
    let batched = FabricMachine::with_batched_delivery(cfg)
        .run(&program, LaunchInput::new(params.clone(), mem.clone()))
        .expect("batched run");
    let unbatched = FabricMachine::with_unbatched_delivery(cfg)
        .run(&program, LaunchInput::new(params, mem))
        .expect("unbatched run");

    assert_eq!(
        batched.memory, oracle.memory,
        "batched diverges from interpreter"
    );
    assert_eq!(
        batched.memory, unbatched.memory,
        "delivery paths disagree on memory"
    );
    assert_eq!(
        batched.stats, unbatched.stats,
        "delivery paths disagree on statistics"
    );
}

/// The full fire × delivery mode grid — {batched, per-token}² — on both
/// storm fixtures: every combination must match the interpreter oracle
/// on memory, and all four must agree byte-for-byte on `RunStats` and
/// the rendered per-job profile (the deterministic `BENCH_profile.json`
/// body). The plain storm replicates past `BATCH_MIN_REPLICATION`
/// (`storm_compiles_past_the_batching_threshold`), so the batched-fire
/// combinations genuinely drain whole ready blocks; the elevator storm
/// covers the re-tagging path that must stay per-token mid-block.
#[test]
fn fire_and_delivery_mode_grid_is_byte_identical() {
    let cfg = SystemConfig::default();
    let fixtures = [
        ("storm", storm_kernel(), storm_input()),
        ("elevator", elevator_kernel(), elevator_input()),
    ];
    for (name, kernel, (params, mem)) in fixtures {
        let program = compiler::compile(&kernel, &cfg).expect("compiles");
        let oracle = interp::run_ref(&kernel, &params, &mem).expect("interp");
        let mut first = None;
        for fire in [FireMode::Batched, FireMode::Unbatched] {
            for delivery in [DeliveryMode::Batched, DeliveryMode::Unbatched] {
                let mut obs = Obs::new(false, true);
                let run = FabricMachine::with_modes(cfg, fire, delivery)
                    .run_observed(
                        &program,
                        LaunchInput::new(params.clone(), mem.clone()),
                        &mut obs,
                    )
                    .unwrap_or_else(|e| panic!("{name} {fire:?}×{delivery:?}: {e}"));
                assert_eq!(
                    run.memory, oracle.memory,
                    "{name} {fire:?}×{delivery:?} diverges from the interpreter"
                );
                let profile = obs.profile.to_json(10).render();
                match &first {
                    None => first = Some((run.stats, profile)),
                    Some((stats0, profile0)) => {
                        assert_eq!(
                            &run.stats, stats0,
                            "{name} {fire:?}×{delivery:?} changed RunStats"
                        );
                        assert_eq!(
                            &profile, profile0,
                            "{name} {fire:?}×{delivery:?} changed the profile artifact"
                        );
                    }
                }
            }
        }
    }
}
