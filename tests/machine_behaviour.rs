//! Behavioural invariants of the timing machines that the paper's
//! argument depends on (beyond functional correctness).

use dmt_core::common::geom::{Delta, Dim3};
use dmt_core::common::ids::Addr;
use dmt_core::{
    compiler, fabric::FabricMachine, Arch, Kernel, KernelBuilder, LaunchInput, Machine, MemImage,
    SystemConfig, Word,
};
use dmt_kernels::suite;
use dmt_tests::run_checked;

fn copy_kernel(n: u32, blocks: u32) -> Kernel {
    let mut kb = KernelBuilder::new("copy", Dim3::linear(n));
    kb.set_grid_blocks(blocks);
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let bid = kb.block_idx();
    let seg = kb.const_i(n as i32);
    let base = kb.mul_i(bid, seg);
    let g = kb.add_i(base, tid);
    let a = kb.index_addr(inp, g, 4);
    let x = kb.load_global(a);
    let oa = kb.index_addr(out, g, 4);
    kb.store_global(oa, x);
    kb.finish().expect("well-formed")
}

fn run_copy(cfg: SystemConfig, n: u32, blocks: u32) -> u64 {
    let k = copy_kernel(n, blocks);
    let total = (n * blocks) as usize;
    let mut mem = MemImage::with_words(2 * total);
    mem.write_i32_slice(Addr(0), &(0..total as i32).collect::<Vec<_>>());
    Machine::new(Arch::DmtCgra, cfg)
        .run(
            &k,
            LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4 * n * blocks)], mem),
        )
        .expect("runs")
        .cycles()
}

#[test]
fn single_phase_kernels_stream_blocks_without_drains() {
    // 8 blocks of 128 must cost far less than 8× one block of 128 — the
    // blocks overlap in the fabric.
    let cfg = SystemConfig::default();
    let one = run_copy(cfg, 128, 1);
    let eight = run_copy(cfg, 128, 8);
    assert!(
        eight < 4 * one,
        "streaming broke: 8 blocks = {eight} vs 1 block = {one}"
    );
}

#[test]
fn barriers_cost_the_baseline_real_cycles() {
    // The same data movement with and without a barrier: the staged
    // variant must be slower on the fabric (drain + scratchpad round
    // trip).
    let n = 256u32;
    let direct = copy_kernel(n, 4);
    let staged = {
        let mut kb = KernelBuilder::new("copy_staged", Dim3::linear(n));
        kb.set_grid_blocks(4);
        kb.set_shared_words(n);
        let inp = kb.param("in");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(n as i32);
        let base = kb.mul_i(bid, seg);
        let g = kb.add_i(base, tid);
        let a = kb.index_addr(inp, g, 4);
        let x = kb.load_global(a);
        let z = kb.const_i(0);
        let sa = kb.index_addr(z, tid, 4);
        kb.store_shared(sa, x);
        kb.barrier();
        let out = kb.param("out");
        let tid = kb.thread_idx(0);
        let bid = kb.block_idx();
        let seg = kb.const_i(n as i32);
        let base = kb.mul_i(bid, seg);
        let g = kb.add_i(base, tid);
        let z = kb.const_i(0);
        let sa = kb.index_addr(z, tid, 4);
        let x = kb.load_shared(sa);
        let oa = kb.index_addr(out, g, 4);
        kb.store_global(oa, x);
        kb.finish().expect("well-formed")
    };
    let total = 1024usize;
    let mk = || {
        let mut mem = MemImage::with_words(2 * total);
        mem.write_i32_slice(Addr(0), &(0..total as i32).collect::<Vec<_>>());
        LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(4096)], mem)
    };
    let cfg = SystemConfig::default();
    let run = |k: &Kernel| {
        Machine::new(Arch::MtCgra, cfg)
            .run(k, mk())
            .expect("runs")
            .cycles()
    };
    let t_direct = run(&direct);
    let t_staged = run(&staged);
    assert!(
        t_staged > t_direct,
        "a barrier must cost cycles: staged {t_staged} vs direct {t_direct}"
    );
}

#[test]
fn negative_shift_compiles_and_streams() {
    // Receive from a *higher* TID (downward communication) across blocks.
    let n = 64u32;
    let mut kb = KernelBuilder::new("down", Dim3::linear(n));
    kb.set_grid_blocks(4);
    let inp = kb.param("in");
    let out = kb.param("out");
    let tid = kb.thread_idx(0);
    let bid = kb.block_idx();
    let seg = kb.const_i(n as i32);
    let base = kb.mul_i(bid, seg);
    let g = kb.add_i(base, tid);
    let a = kb.index_addr(inp, g, 4);
    let x = kb.load_global(a);
    let next = kb.from_thread_or_const(x, Delta::new(5), Word::from_i32(0), None);
    let oa = kb.index_addr(out, g, 4);
    kb.store_global(oa, next);
    let kernel = kb.finish().expect("well-formed");

    let total = 256usize;
    let mut mem = MemImage::with_words(2 * total);
    let data: Vec<i32> = (0..total as i32).map(|i| i * 2).collect();
    mem.write_i32_slice(Addr(0), &data);
    let report = Machine::new(Arch::DmtCgra, SystemConfig::default())
        .run(
            &kernel,
            LaunchInput::new(vec![Word::from_u32(0), Word::from_u32(1024)], mem),
        )
        .expect("runs");
    let got = report.memory.read_i32_slice(Addr(1024), total);
    for b in 0..4usize {
        for t in 0..64usize {
            let idx = b * 64 + t;
            let want = if t + 5 < 64 { data[b * 64 + t + 5] } else { 0 };
            assert_eq!(got[idx], want, "block {b} thread {t}");
        }
    }
}

#[test]
fn replication_never_changes_results() {
    let cfg = SystemConfig::default();
    for bench in suite::all() {
        let kernel = bench.dmt_kernel();
        let program = compiler::compile(&kernel, &cfg).expect("compiles");
        if program.replication == 1 {
            continue;
        }
        let mut serial = program.clone();
        serial.replication = 1;
        let m = FabricMachine::new(cfg);
        let a = m.run(&program, bench.workload(9).launch()).expect("runs");
        let b = m.run(&serial, bench.workload(9).launch()).expect("runs");
        assert_eq!(a.memory, b.memory, "{}", bench.info().name);
    }
}

#[test]
fn three_d_thread_spaces_work_end_to_end() {
    // A 4×4×4 block with a z-direction neighbour exchange.
    let dims = Dim3::new(4, 4, 4);
    let mut kb = KernelBuilder::new("cube", dims);
    let out = kb.param("out");
    let tx = kb.thread_idx(0);
    let ty = kb.thread_idx(1);
    let tz = kb.thread_idx(2);
    let four = kb.const_i(4);
    let sixteen = kb.const_i(16);
    let zr = kb.mul_i(tz, sixteen);
    let yr = kb.mul_i(ty, four);
    let p = kb.add_i(zr, yr);
    let lin = kb.add_i(p, tx);
    // Receive the linear id of the thread one z-layer below.
    let below = kb.from_thread_or_const(lin, Delta::new_3d(0, 0, -1), Word::from_i32(-1), None);
    let oa = kb.index_addr(out, lin, 4);
    kb.store_global(oa, below);
    let kernel = kb.finish().expect("well-formed");

    let report = Machine::new(Arch::DmtCgra, SystemConfig::default())
        .run(
            &kernel,
            LaunchInput::new(vec![Word::from_u32(0)], MemImage::with_words(64)),
        )
        .expect("runs");
    let got = report.memory.read_i32_slice(Addr(0), 64);
    for (i, &v) in got.iter().enumerate() {
        let want = if i >= 16 { i as i32 - 16 } else { -1 };
        assert_eq!(v, want, "linear id {i}");
    }
}

#[test]
fn energy_accounts_are_consistent_with_counters() {
    let cfg = SystemConfig::default();
    for bench in suite::all().into_iter().take(3) {
        let dmt = run_checked(bench.as_ref(), Arch::DmtCgra, cfg, 1);
        let fermi = run_checked(bench.as_ref(), Arch::FermiSm, cfg, 1);
        assert_eq!(dmt.energy.fetch_decode_j, 0.0);
        assert_eq!(dmt.energy.register_file_j, 0.0);
        assert!(dmt.energy.token_transport_j > 0.0);
        assert_eq!(fermi.energy.token_transport_j, 0.0);
        assert!(fermi.energy.fetch_decode_j > 0.0);
        assert!(dmt.total_joules() > 0.0 && fermi.total_joules() > 0.0);
    }
}
