# Local verification targets, kept in lock-step with .github/workflows/ci.yml
# so "make <target>" locally reproduces exactly what CI gates on.

.PHONY: all build test lint fmt bench-smoke perf-smoke arch-gate profile-smoke perf-full proptest-deep serve-smoke chaos clean

all: build test lint bench-smoke perf-smoke profile-smoke serve-smoke chaos

# CI job: build (release)
build:
	cargo build --release --locked

# CI job: test — exactly the tier-1 verify command
test:
	cargo test -q --locked

# CI job: fmt + clippy
lint:
	cargo fmt --check
	cargo clippy --all-targets --locked -- -D warnings

# Applies formatting (lint only checks it).
fmt:
	cargo fmt

# CI job: example + bench smoke (parallel runner + JSON artifact + result
# cache, mirroring the bench-artifact CI job: cold run fills the cache, the
# warm rerun must hit for every job and reproduce the jobs array exactly).
# The smoke cache is wiped first so the cold run is genuinely cold — the
# job_hash key does not cover simulator sources, and a stale cache would
# report pre-edit numbers (CI gets the same guarantee by keying its
# persisted cache on the hash of every .rs file).
bench-smoke:
	cargo run --release --locked --example quickstart
	cargo run --release --locked -p dmt-bench --bin fig11_speedup -- --smoke
	rm -rf artifacts/smoke-cache
	cargo run --release --locked -p dmt-bench --bin fig11_speedup -- \
		--smoke --threads 2 --json artifacts/smoke.json --cache artifacts/smoke-cache
	cargo run --release --locked -p dmt-bench --bin fig11_speedup -- \
		--smoke --threads 2 --json artifacts/smoke-warm.json --cache artifacts/smoke-cache
	python3 ci/bench_regress.py artifacts/smoke.json artifacts/smoke-warm.json \
		--require-identical

# CI step: perf-smoke — simulator wall-clock throughput (informational,
# host-dependent; the deterministic-cycles gate lives in bench-smoke),
# followed by the tracing-overhead gate: the untraced engine must stay
# ahead of the vendored pre-overhaul baseline.
perf-smoke:
	cargo run --release --locked -p dmt-bench --bin bench_hotpath -- \
		--json artifacts/BENCH_hotpath.json
	python3 ci/overhead_gate.py artifacts/BENCH_hotpath.json

# CI step: arch-gate — fresh hotpath measurement, then the per-arch
# throughput gate: MT-CGRA sim-cycles/sec must stay within 5% of the
# previous run's artifact (CI persists it as baseline-hotpath.json; the
# first run skips cleanly) and the absolute MT/SM slowdown ceiling
# (DMT_MAX_MT_SM_RATIO, kept in lockstep with the workflow env).
# Mirrors the bench-artifact job's step.
DMT_MAX_MT_SM_RATIO ?= 8.5
arch-gate:
	cargo run --release --locked -p dmt-bench --bin bench_hotpath -- \
		--json artifacts/BENCH_hotpath.json
	python3 ci/arch_gate.py artifacts/BENCH_hotpath.json \
		--baseline artifacts/trajectory/baseline-hotpath.json \
		--max-mt-sm-ratio $(DMT_MAX_MT_SM_RATIO)

# CI step: profile-smoke — the hot-spot profile of the smoke suite
# (byte-identical for any --threads N; locked by tests/golden_profile.rs).
profile-smoke:
	cargo run --release --locked -p dmt-bench --bin profile_hotspots -- \
		--smoke --threads 2 --json artifacts/BENCH_profile.json

# Full Table 3 throughput sweep (all nine benchmarks × three machines).
# Deliberately NOT part of `all` or CI's push path — the headline `total`
# block stays the smoke measurement either way, so trends remain
# like-for-like; run this locally when profiling engine changes.
perf-full:
	cargo run --release --locked -p dmt-bench --bin bench_hotpath -- \
		--full --json artifacts/BENCH_hotpath_full.json

# CI job (scheduled): proptest-deep — the differential property suites
# at 16x the push-path case count. DMT_PROPTEST_CASES overrides every
# suite's configured count; the vendored proptest scales its rejection
# budget to match. Override locally: make proptest-deep DEEP_CASES=512.
DEEP_CASES ?= 2048
proptest-deep:
	DMT_PROPTEST_CASES=$(DEEP_CASES) cargo test -q --locked \
		--test properties --test token_storm

# CI job: serve-smoke — boot the daemon, race 4 clients through the
# smoke grid over TCP, assert byte-identical results, memoized
# duplicates, and a clean drain (exit 0). The cache dir is wiped first
# so wave 1 genuinely simulates.
serve-smoke:
	cargo build --release --locked -p dmt-serve
	rm -rf artifacts/serve-smoke
	python3 ci/serve_smoke.py --binary target/release/dmt-serve --out artifacts/serve-smoke

# CI job: chaos-smoke — the built binaries under a fixed adversarial
# fault schedule: cache write/rename faults absorbed and replayed
# byte-identically, deadlines typed as timed_out, one pool.exec fault
# costs exactly one job, and the daemon survives a poisoned response
# plus a per-job deadline and still drains clean. The in-process chaos
# invariants live in tests/chaos.rs (part of `make test`); this drives
# the same seams over argv and TCP.
chaos:
	cargo build --release --locked -p dmt-bench -p dmt-serve
	python3 ci/chaos_smoke.py \
		--bench-binary target/release/fig11_speedup \
		--serve-binary target/release/dmt-serve \
		--out artifacts/chaos-smoke

clean:
	cargo clean
