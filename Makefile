# Local verification targets, kept in lock-step with .github/workflows/ci.yml
# so "make <target>" locally reproduces exactly what CI gates on.

.PHONY: all build test lint fmt bench-smoke clean

all: build test lint bench-smoke

# CI job: build (release)
build:
	cargo build --release --locked

# CI job: test — exactly the tier-1 verify command
test:
	cargo test -q --locked

# CI job: fmt + clippy
lint:
	cargo fmt --check
	cargo clippy --all-targets --locked -- -D warnings

# Applies formatting (lint only checks it).
fmt:
	cargo fmt

# CI job: example + bench smoke (parallel runner + JSON artifact, mirroring
# the bench-artifact CI job)
bench-smoke:
	cargo run --release --locked --example quickstart
	cargo run --release --locked -p dmt-bench --bin fig11_speedup -- --smoke
	cargo run --release --locked -p dmt-bench --bin fig11_speedup -- \
		--smoke --threads 2 --json artifacts/smoke.json

clean:
	cargo clean
