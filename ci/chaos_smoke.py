#!/usr/bin/env python3
"""Chaos smoke for the fault-injection/robustness stack.

Drives the *built release binaries* (not the unit suites) through a
fixed adversarial fault schedule and asserts the robustness contracts
end to end:

1. Cache-layer faults are absorbed: a smoke run with injected cache
   write/rename failures exits 0, reports the failures on the stats
   line, and produces a jobs array identical to the fault-free run —
   twice, byte-for-byte (deterministic replay).
2. Deadlines type, not hang: `--deadline-cycles 1` times out every job
   (status "timed_out", exit 1 via the incomplete-suite gate).
3. Pool faults cost one job: an injected `pool.exec` failure yields
   exactly one "failed" slot, and the schedule replays identically.
4. The daemon survives a fault schedule: with an injected
   `serve.request` fault armed, a client that retries the one poisoned
   response still completes a normal job, a per-job deadline comes back
   "timed_out" without retry, and drain exits 0.

Artifacts land in --out. Stdlib only.
"""

import argparse
import json
import pathlib
import shutil
import socket
import subprocess
import sys
import time

SMOKE_JOBS = 9  # first three Table 3 benchmarks x three machines


def run(binary, argv, out):
    """Runs a bench binary; returns (exit code, stderr text)."""
    proc = subprocess.run(
        [binary, *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        timeout=600,
        check=False,
    )
    (out / "last-stderr.log").write_text(proc.stderr)
    return proc.returncode, proc.stderr


def jobs_of(path):
    """The deterministic jobs array of a versioned artifact."""
    doc = json.loads(pathlib.Path(path).read_text())
    return doc["jobs"]


def check(cond, what):
    if not cond:
        sys.exit(f"chaos-smoke: FAIL: {what}")
    print(f"chaos-smoke: ok: {what}")


def batch_scenarios(bench_bin, out):
    base = out / "base.json"
    code, _ = run(
        bench_bin,
        ["--smoke", "--threads", "2", "--json", str(base)],
        out,
    )
    check(code == 0, "fault-free smoke run exits 0")
    base_jobs = jobs_of(base)
    check(len(base_jobs) == SMOKE_JOBS, f"baseline covers {SMOKE_JOBS} jobs")

    # 1. Cache write+rename faults: absorbed, counted, replayable.
    cache_spec = "seed=11;cache.write:nth=2;cache.rename:nth=5"
    for attempt in ("a", "b"):
        cache_dir = out / f"cache-{attempt}"
        art = out / f"cache-faults-{attempt}.json"
        code, err = run(
            bench_bin,
            [
                "--smoke",
                "--threads",
                "2",
                "--faults",
                cache_spec,
                "--cache",
                str(cache_dir),
                "--json",
                str(art),
            ],
            out,
        )
        check(code == 0, f"cache-fault run {attempt} exits 0 (degraded, not dead)")
        check(
            "2 store-failures" in err,
            f"cache-fault run {attempt} counts both injected failures",
        )
        check(
            jobs_of(art) == base_jobs,
            f"cache-fault run {attempt} jobs array matches the fault-free run",
        )

    # 2. A one-cycle deadline times out the whole suite, typed.
    art = out / "deadline.json"
    code, err = run(
        bench_bin,
        ["--smoke", "--threads", "2", "--deadline-cycles", "1", "--json", str(art)],
        out,
    )
    check(code == 1, "deadline run exits 1 via the incomplete-suite gate")
    check("suite row(s) failed" in err, "deadline run reports the failed rows")
    timed = [j for j in jobs_of(art) if j["status"] == "timed_out"]
    check(len(timed) == SMOKE_JOBS, "every job times out under a 1-cycle budget")
    check(
        all("deadline exceeded" in j["error"] for j in timed),
        "timeouts carry the deadline error",
    )

    # 3. One pool.exec fault costs exactly one job; serial replay is
    # byte-identical (with >1 worker the fault ordinal races the
    # dispatch order, so WHICH job dies would be nondeterministic).
    docs = []
    for attempt in ("a", "b"):
        art = out / f"pool-fault-{attempt}.json"
        code, _ = run(
            bench_bin,
            [
                "--smoke",
                "--threads",
                "1",
                "--faults",
                "pool.exec:nth=4",
                "--json",
                str(art),
            ],
            out,
        )
        check(code == 1, f"pool-fault run {attempt} exits 1 (a row failed)")
        jobs = jobs_of(art)
        failed = [j for j in jobs if j["status"] == "failed"]
        check(len(failed) == 1, f"pool-fault run {attempt} fails exactly one job")
        check(
            failed[0]["error"] == "injected fault: pool.exec",
            f"pool-fault run {attempt} failure is typed and attributed",
        )
        check(
            len([j for j in jobs if j["status"] == "ok"]) == SMOKE_JOBS - 1,
            f"pool-fault run {attempt} siblings all complete",
        )
        docs.append(json.dumps(jobs, sort_keys=True))
    check(docs[0] == docs[1], "pool-fault schedule replays identically")


class Client:
    """One line-delimited JSON connection."""

    def __init__(self, addr):
        self.sock = socket.create_connection(addr, timeout=120)
        self.rfile = self.sock.makefile("r")
        self.injected = 0

    def req(self, obj):
        """Sends one request, retrying through injected request faults."""
        for _ in range(16):
            self.sock.sendall((json.dumps(obj) + "\n").encode())
            line = self.rfile.readline()
            if not line:
                raise RuntimeError("server closed the connection")
            resp = json.loads(line)
            if "injected fault" in str(resp.get("error", "")):
                self.injected += 1
                continue
            return resp
        raise RuntimeError("fault kept firing; Nth triggers fire once")


def free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_ready(addr, proc, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"daemon exited early: {proc.returncode}")
        try:
            socket.create_connection(addr, timeout=1).close()
            return
        except OSError:
            time.sleep(0.1)
    raise RuntimeError("daemon never came up")


def serve_scenario(serve_bin, out):
    port = free_port()
    addr = ("127.0.0.1", port)
    proc = subprocess.Popen(
        [
            serve_bin,
            "--addr",
            f"127.0.0.1:{port}",
            "--cache",
            str(out / "serve-cache"),
            "--threads",
            "2",
            "--faults",
            "serve.request:nth=2",
        ]
    )
    try:
        wait_ready(addr, proc)
        client = Client(addr)
        resp = client.req(
            {
                "verb": "submit",
                "jobs": [
                    {"bench": "scan", "arch": "dmt_cgra"},
                    {"bench": "scan", "arch": "mt_cgra", "deadline_cycles": 1},
                ],
            }
        )
        check(resp.get("ok") is True, "daemon accepts the chaos submit")
        normal, timed = (job["job_hash"] for job in resp["jobs"])

        states = {}
        poll_deadline = time.monotonic() + 300
        for job_hash in (normal, timed):
            while True:
                status = client.req({"verb": "status", "job_hash": job_hash})
                state = status.get("state")
                if state not in ("queued", "running"):
                    states[job_hash] = status
                    break
                if time.monotonic() > poll_deadline:
                    raise RuntimeError(f"job {job_hash} never settled: {status}")
                time.sleep(0.05)

        check(states[normal]["state"] == "done", "unlimited job completes")
        check(
            states[timed]["state"] == "timed_out",
            "1-cycle-deadline job is typed timed_out",
        )
        check(
            states[timed]["attempts"] == 1,
            "a timeout is permanent: no retry burned on it",
        )
        check(
            client.injected == 1,
            "exactly one response was poisoned and the client retried through it",
        )

        metrics = client.req({"verb": "metrics"})
        check(metrics["jobs"]["timed_out"] == 1, "metrics count the timeout")
        check(metrics["jobs"]["done"] == 1, "metrics count the completion")

        drain = client.req({"verb": "drain"})
        check(drain.get("ok") is True, "drain accepted")
        code = proc.wait(timeout=120)
        check(code == 0, "daemon drains and exits 0 despite the fault schedule")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-binary", default="target/release/fig11_speedup")
    ap.add_argument("--serve-binary", default="target/release/dmt-serve")
    ap.add_argument("--out", default="artifacts/chaos-smoke")
    args = ap.parse_args()

    out = pathlib.Path(args.out)
    shutil.rmtree(out, ignore_errors=True)
    out.mkdir(parents=True, exist_ok=True)

    batch_scenarios(args.bench_binary, out)
    serve_scenario(args.serve_binary, out)
    print("chaos-smoke: PASS")


if __name__ == "__main__":
    main()
