#!/usr/bin/env python3
"""Performance gate over two dmt-runner artifacts.

Usage:
    bench_regress.py BASELINE.json NEW.json [--threshold 1.05]
    bench_regress.py A.json B.json --require-identical

Compares per-job cycle counts between a baseline artifact and a new one,
matching jobs on their stable ``job_hash`` and only at identical
``config_hash`` (a config change is a different experiment, not a
regression). Fails (exit 1) when any matched job's cycles grew by more
than the threshold. Skips cleanly (exit 0, message) when the baseline is
missing or unreadable — the first run of a fresh repository has nothing
to compare against.

``--require-identical`` is the warm-cache gate: it asserts the two
artifacts' deterministic ``jobs`` arrays are exactly equal (the rest of
the document — ``meta.wall_ms`` — is volatile by design).
"""

import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def jobs_by_hash(doc):
    out = {}
    for job in doc.get("jobs", []):
        out[job["job_hash"]] = job
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=1.05,
                    help="max allowed cycles ratio new/baseline (default 1.05)")
    ap.add_argument("--require-identical", action="store_true",
                    help="fail unless the two jobs arrays are exactly equal")
    args = ap.parse_args()

    try:
        baseline = load(args.baseline)
    except (OSError, json.JSONDecodeError) as e:
        if args.require_identical:
            print(f"bench-regress: cannot read {args.baseline}: {e}", file=sys.stderr)
            return 1
        print(f"bench-regress: no baseline ({e}); skipping cleanly")
        return 0
    new = load(args.new)

    if args.require_identical:
        if baseline.get("jobs") == new.get("jobs"):
            print(f"bench-regress: jobs arrays identical "
                  f"({len(new.get('jobs', []))} jobs)")
            return 0
        print("bench-regress: jobs arrays DIFFER between "
              f"{args.baseline} and {args.new}", file=sys.stderr)
        return 1

    base_jobs = jobs_by_hash(baseline)
    compared = 0
    regressions = []
    for job in new.get("jobs", []):
        old = base_jobs.get(job["job_hash"])
        if old is None:
            continue  # new experiment point: nothing to gate against
        if old.get("config_hash") != job.get("config_hash"):
            continue  # different configuration: not comparable
        if old.get("status") != "ok" or job.get("status") != "ok":
            continue
        compared += 1
        ratio = job["cycles"] / old["cycles"] if old["cycles"] else float("inf")
        marker = " <-- REGRESSION" if ratio > args.threshold else ""
        print(f"  {job['bench']}@{job['arch']}: {old['cycles']} -> "
              f"{job['cycles']} cycles ({ratio:.4f}x){marker}")
        if ratio > args.threshold:
            regressions.append((job, ratio))

    if compared == 0:
        print("bench-regress: no comparable jobs (all points changed config); skipping")
        return 0
    if regressions:
        print(f"bench-regress: {len(regressions)} of {compared} jobs regressed "
              f"beyond {args.threshold:.2f}x:", file=sys.stderr)
        for job, ratio in regressions:
            print(f"  {job['bench']}@{job['arch']} ({job['job_hash']}): "
                  f"{ratio:.4f}x", file=sys.stderr)
        return 1
    print(f"bench-regress: {compared} jobs within {args.threshold:.2f}x; OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
