#!/usr/bin/env python3
"""Renders BENCH_trajectory.json as a cycles-over-pushes Markdown table.

Usage:
    trajectory_summary.py TRAJECTORY.json [--out FILE] [--last N]

Produces one table with a row per push (newest last) and a column per
``bench/arch`` job of the smoke suite, holding that push's deterministic
cycle count — the at-a-glance view of how simulated performance moved
across history. Cells are annotated with the delta against the previous
push (``▲`` regression / ``▼`` improvement) when the job's
``config_hash`` is unchanged, so only like-for-like changes are marked.
A trailing column shows the informational ``hotpath`` simulator
throughput (sim-cycles/sec) when the entry recorded one, and a final
``MT/SM`` column the MT-CGRA-over-Fermi-SM throughput ratio (how many
times slower the MT-CGRA engine simulates than the SM engine on the
same smoke work — the series the edge-batching work drives down;
entries recorded before the per-arch block render ``-``).

Entries recorded from schema-v2 artifacts carry a per-job ``phases``
count and a ``phase_cycles`` vector; multi-phase cells are annotated
``·Np``, and each push whose entry resolved more than one phase
anywhere gets indented per-phase sub-rows (``↳ phase k``) breaking the
totals down phase by phase. Entries recorded from v1 artifacts (older
rows of the same series) simply lack the keys and render unannotated —
both row shapes coexist in one table.

``--out`` appends to the given file (pass ``$GITHUB_STEP_SUMMARY`` in CI
to publish the table on the job page); the table is always printed to
stdout. Exits 0 with a note when the trajectory is missing or empty —
rendering history must never fail a build that has none yet.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trajectory summary: no usable trajectory ({e})")
        return None


def fmt_cell(job, prev_job):
    if job.get("status") != "ok":
        return job.get("status", "-")
    cell = f"{job['cycles']}"
    # v2 rows know their phase count; annotate multi-phase jobs (v1 rows
    # lack the key and render unannotated).
    phases = job.get("phases")
    if isinstance(phases, int) and phases > 1:
        cell += f" ·{phases}p"
    if (
        prev_job is not None
        and prev_job.get("status") == "ok"
        and prev_job.get("config_hash") == job.get("config_hash")
        and prev_job["cycles"] != job["cycles"]
    ):
        delta = job["cycles"] - prev_job["cycles"]
        arrow = "▲" if delta > 0 else "▼"
        cell += f" ({arrow}{abs(delta)})"
    return cell


def phase_rows(entry, columns):
    """Indented per-phase sub-rows for one push, or [] for v1 entries.

    Emitted only when some job resolved more than one phase — a single
    all-phase-1 row would just repeat the totals row above it.
    """
    by_key = {(j["bench"], j["arch"]): j for j in entry.get("jobs", [])}
    vectors = {
        k: j["phase_cycles"]
        for k, j in by_key.items()
        if isinstance(j.get("phase_cycles"), list)
    }
    depth = max((len(v) for v in vectors.values()), default=0)
    if depth <= 1:
        return []
    rows = []
    for p in range(depth):
        cells = [
            str(vectors[k][p])
            if k in vectors and p < len(vectors[k])
            else "-"
            for k in columns
        ]
        rows.append(f"| ↳ phase {p} | " + " | ".join(cells) + " | - | - |")
    return rows


def fmt_hotpath(entry):
    h = entry.get("hotpath")
    if not h or h.get("sim_cycles_per_sec") is None:
        return "-"
    cps = h["sim_cycles_per_sec"]
    speedup = h.get("speedup_vs_baseline")
    cell = f"{cps / 1e3:.0f}k"
    if speedup is not None:
        cell += f" ({speedup:.2f}x)"
    return cell


FIRE_MODE_MARKS = {"batched": "·b", "per_token": "·pt", "mixed": "·mx"}


def fmt_mt_over_sm(entry):
    """MT-CGRA/SM throughput ratio cell ('-' for pre-per-arch entries),
    suffixed with the MT-CGRA engine's active fire mode when the entry
    records one (schema-v3 hotpath artifacts): ``·b`` batched, ``·pt``
    per-token, ``·mx`` mixed across the smoke benches."""
    h = entry.get("hotpath") or {}
    ratio = h.get("mt_vs_sm_slowdown")
    if not isinstance(ratio, (int, float)) or ratio <= 0:
        return "-"
    cell = f"{ratio:.2f}x"
    mt = (h.get("modes") or {}).get("mt_cgra") or {}
    mark = FIRE_MODE_MARKS.get(mt.get("fire_mode"))
    if mark:
        cell += f" {mark}"
    return cell


def render(trajectory, last):
    entries = trajectory.get("entries", [])[-last:]
    if not entries:
        return None
    # Column order: first appearance across entries (bench-major, stable).
    columns = []
    for e in entries:
        for j in e.get("jobs", []):
            key = (j["bench"], j["arch"])
            if key not in columns:
                columns.append(key)
    lines = [
        "### Bench trajectory (cycles over pushes)",
        "",
        "| push | "
        + " | ".join(f"{b}/{a}" for b, a in columns)
        + " | hotpath [cyc/s] | MT/SM |",
        "|---" * (len(columns) + 3) + "|",
    ]
    prev_by_key = {}
    for e in entries:
        by_key = {(j["bench"], j["arch"]): j for j in e.get("jobs", [])}
        cells = [
            fmt_cell(by_key[k], prev_by_key.get(k)) if k in by_key else "-"
            for k in columns
        ]
        sha = str(e.get("sha", "?"))[:10]
        lines.append(
            f"| `{sha}` | "
            + " | ".join(cells)
            + f" | {fmt_hotpath(e)} | {fmt_mt_over_sm(e)} |"
        )
        lines.extend(phase_rows(e, columns))
        prev_by_key = by_key
    lines.append("")
    lines.append(
        "Cycle deltas are marked only at identical `config_hash`; "
        "`·Np` marks multi-phase jobs and `↳ phase k` rows break their "
        "cycles down per phase (schema-v2 entries); "
        "`hotpath` is host-dependent simulator throughput (informational); "
        "`MT/SM` is how many times slower the MT-CGRA engine simulates "
        "than the Fermi-SM engine on the smoke work (gated push-over-push "
        "and against an absolute ceiling by `ci/arch_gate.py`), suffixed "
        "with the active fire mode (`·b` batched, `·pt` per-token, `·mx` "
        "mixed) on entries that record one."
    )
    return "\n".join(lines) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trajectory")
    ap.add_argument("--out", help="file to append the table to (e.g. $GITHUB_STEP_SUMMARY)")
    ap.add_argument("--last", type=int, default=20, help="render at most the last N pushes")
    args = ap.parse_args()

    trajectory = load(args.trajectory)
    if trajectory is None:
        return 0
    table = render(trajectory, max(args.last, 1))
    if table is None:
        print("trajectory summary: trajectory has no entries yet")
        return 0
    print(table, end="")
    if args.out:
        with open(args.out, "a", encoding="utf-8") as f:
            f.write(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
