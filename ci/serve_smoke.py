#!/usr/bin/env python3
"""Concurrent-client smoke test for the dmt-serve daemon.

Boots the built daemon on a free port, fans out N clients that all
submit the same smoke grid (first three Table 3 benchmarks x three
machines), polls to completion, and asserts every client fetched
byte-identical result lines. A follow-up duplicate wave must come back
entirely "done" without new queue slots (the daemon memoizes in its
result cache). Finally drains and asserts a clean exit 0.

Artifacts land in --out: results.jsonl (one result line per job) and
summary.json (counts + the daemon's exit status). Stdlib only.
"""

import argparse
import json
import pathlib
import socket
import subprocess
import sys
import threading
import time

GRID = [
    {"bench": bench, "arch": arch}
    for bench in ("scan", "matrixMul", "convolution")
    for arch in ("fermi_sm", "mt_cgra", "dmt_cgra")
]


class Client:
    """One line-delimited JSON connection."""

    def __init__(self, addr):
        self.sock = socket.create_connection(addr, timeout=120)
        self.rfile = self.sock.makefile("r")

    def req(self, obj):
        """Sends one request; returns (parsed, raw-line)."""
        self.sock.sendall((json.dumps(obj) + "\n").encode())
        line = self.rfile.readline()
        if not line:
            raise RuntimeError("server closed the connection")
        return json.loads(line), line.rstrip("\n")

    def submit_and_fetch(self):
        """Submits the grid, waits for every job, fetches every result."""
        resp, _ = self.req({"verb": "submit", "jobs": GRID})
        if not resp.get("ok"):
            raise RuntimeError(f"submit rejected: {resp}")
        hashes = [job["job_hash"] for job in resp["jobs"]]
        deadline = time.monotonic() + 300
        for job_hash in hashes:
            while True:
                status, _ = self.req({"verb": "status", "job_hash": job_hash})
                state = status.get("state")
                if state == "done":
                    break
                if state == "failed" or time.monotonic() > deadline:
                    raise RuntimeError(f"job {job_hash}: {status}")
                time.sleep(0.05)
        return [
            self.req({"verb": "result", "job_hash": h})[1] for h in hashes
        ]


def free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_ready(addr, proc, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"daemon exited early: {proc.returncode}")
        try:
            socket.create_connection(addr, timeout=1).close()
            return
        except OSError:
            time.sleep(0.1)
    raise RuntimeError("daemon never came up")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", default="target/release/dmt-serve")
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--out", default="artifacts/serve-smoke")
    args = ap.parse_args()

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    port = free_port()
    addr = ("127.0.0.1", port)
    proc = subprocess.Popen(
        [
            args.binary,
            "--addr",
            f"127.0.0.1:{port}",
            "--cache",
            str(out / "cache"),
            "--threads",
            "2",
        ]
    )
    try:
        wait_ready(addr, proc)

        # Wave 1: N clients race the same grid in; the daemon dedupes,
        # simulates each job once, and everyone reads the same bytes.
        fetched = [None] * args.clients
        errors = []

        def run_client(i):
            try:
                fetched[i] = Client(addr).submit_and_fetch()
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(f"client {i}: {exc}")

        workers = [
            threading.Thread(target=run_client, args=(i,))
            for i in range(args.clients)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        if errors:
            raise RuntimeError("; ".join(errors))
        for i, lines in enumerate(fetched[1:], start=1):
            if lines != fetched[0]:
                raise RuntimeError(f"client {i} read different bytes")

        # Wave 2: a duplicate submission is answered wholly from the
        # memo table — every job already done, nothing queued.
        dup, _ = Client(addr).req({"verb": "submit", "jobs": GRID})
        if not dup.get("ok"):
            raise RuntimeError(f"duplicate submit rejected: {dup}")
        not_done = [j for j in dup["jobs"] if j.get("state") != "done"]
        if not_done:
            raise RuntimeError(f"duplicates not memoized: {not_done}")

        drained, _ = Client(addr).req({"verb": "drain"})
        if not drained.get("ok"):
            raise RuntimeError(f"drain rejected: {drained}")
        code = proc.wait(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    if code != 0:
        raise RuntimeError(f"daemon exited {code} after drain")
    (out / "results.jsonl").write_text("\n".join(fetched[0]) + "\n")
    (out / "summary.json").write_text(
        json.dumps(
            {
                "clients": args.clients,
                "jobs": len(GRID),
                "results": len(fetched[0]),
                "duplicate_wave_done": len(dup["jobs"]),
                "exit_code": code,
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"serve-smoke: {args.clients} clients x {len(GRID)} jobs, "
        f"byte-identical results, duplicates memoized, clean drain"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
