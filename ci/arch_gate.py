#!/usr/bin/env python3
"""Per-architecture simulator-throughput gate over two hotpath artifacts.

Usage:
    arch_gate.py NEW_hotpath.json --baseline PREV_hotpath.json \
        [--min-ratio 0.95] [--arch mt_cgra] [--max-mt-sm-ratio 6.5]

Reads the schema-v2 ``archs`` block of ``BENCH_hotpath.json`` (per-arch
sim-cycles/sec over the smoke per-job set) from the current run and from
the previous push's artifact (persisted by CI as
``artifacts/trajectory/baseline-hotpath.json``, the way
``baseline-smoke.json`` backs ``bench_regress.py``). Fails (exit 1) when
the gated architecture's throughput fell below ``--min-ratio`` of the
baseline — by default a >5% MT-CGRA regression, the architecture the
edge-batched delivery work targets; the other architectures print
informationally. Skips cleanly (exit 0, message) when the baseline is
missing, unreadable, or predates the ``archs`` block — the first run of
a fresh repository has nothing to compare against.

Additionally fails when the current artifact's ``mt_vs_sm_slowdown``
(how many times slower the MT-CGRA engine simulates than the Fermi SM
on the same smoke work) exceeds ``--max-mt-sm-ratio`` — an *absolute*
ceiling that needs no baseline, so the MT/SM gap can only ratchet down.
The workflow env sets the operative value (``DMT_MAX_MT_SM_RATIO``);
tighten it there as engine work closes the gap. Skips cleanly when the
artifact predates the ratio field (pre-v2 schemas).

Wall-clock throughput is host-dependent; this gate backstops the
MT-CGRA engine's simulator performance between pushes on comparable CI
runners, while cycle counts stay gated exactly by ``bench_regress.py``.
"""

import argparse
import json
import sys


def arch_cps(doc):
    """Per-arch sim-cycles/sec, or None for pre-v2 artifacts."""
    archs = doc.get("archs")
    if not isinstance(archs, dict):
        return None
    out = {}
    for name, rec in archs.items():
        cps = rec.get("sim_cycles_per_sec") if isinstance(rec, dict) else None
        if isinstance(cps, (int, float)) and cps > 0:
            out[name] = float(cps)
    return out or None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("new", help="current BENCH_hotpath.json")
    ap.add_argument("--baseline", required=True,
                    help="previous push's BENCH_hotpath.json")
    ap.add_argument("--min-ratio", type=float, default=0.95,
                    help="fail when gated arch's new/baseline cyc/s falls "
                         "below this (default 0.95, i.e. a >5%% regression)")
    ap.add_argument("--arch", default="mt_cgra",
                    help="architecture key to gate on (default mt_cgra)")
    ap.add_argument("--max-mt-sm-ratio", type=float, default=6.5,
                    help="fail when mt_vs_sm_slowdown exceeds this absolute "
                         "ceiling (default 6.5; set via DMT_MAX_MT_SM_RATIO "
                         "in the workflow and ratchet down as the gap closes)")
    args = ap.parse_args()

    try:
        with open(args.new, encoding="utf-8") as f:
            new = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"arch gate: cannot read {args.new}: {e}", file=sys.stderr)
        return 1
    new_cps = arch_cps(new)
    if new_cps is None:
        print(f"arch gate: {args.new} has no per-arch block "
              f"(schema_version {new.get('schema_version')!r})", file=sys.stderr)
        return 1

    # Absolute MT/SM ceiling: independent of the push-over-push baseline,
    # so it runs (and can fail) even on a fresh repository.
    failed = False
    ratio = new.get("mt_vs_sm_slowdown")
    if isinstance(ratio, (int, float)) and ratio > 0:
        mode = ""
        mt = new.get("archs", {}).get("mt_cgra")
        if isinstance(mt, dict) and isinstance(mt.get("fire_mode"), str):
            mode = (f" (fire {mt['fire_mode']}, "
                    f"delivery {mt.get('delivery_mode', '?')})")
        if ratio > args.max_mt_sm_ratio:
            print(f"arch gate: mt_vs_sm_slowdown {ratio:.2f}x exceeds the "
                  f"{args.max_mt_sm_ratio:.2f}x ceiling{mode}", file=sys.stderr)
            failed = True
        else:
            print(f"  mt_vs_sm_slowdown {ratio:.2f}x within the "
                  f"{args.max_mt_sm_ratio:.2f}x ceiling{mode}")
    else:
        print("arch gate: artifact has no mt_vs_sm_slowdown; "
              "skipping the absolute ceiling")

    try:
        with open(args.baseline, encoding="utf-8") as f:
            base = json.load(f)
        base_cps = arch_cps(base)
    except (OSError, json.JSONDecodeError) as e:
        print(f"arch gate: no baseline ({e}); skipping the push-over-push gate")
        return 1 if failed else 0
    if base_cps is None:
        print("arch gate: baseline predates the per-arch block; "
              "skipping the push-over-push gate")
        return 1 if failed else 0

    regressed = False
    for name in sorted(set(new_cps) | set(base_cps)):
        if name not in new_cps or name not in base_cps:
            print(f"  {name}: present in only one artifact; skipped")
            continue
        push_ratio = new_cps[name] / base_cps[name]
        gated = name == args.arch
        verdict = ""
        if gated:
            verdict = " — ok" if push_ratio >= args.min_ratio else " <-- REGRESSION"
            regressed = regressed or push_ratio < args.min_ratio
        print(f"  {name}: {base_cps[name]:.0f} -> {new_cps[name]:.0f} cyc/s "
              f"({push_ratio:.3f}x){verdict}")

    if args.arch not in new_cps or args.arch not in base_cps:
        print(f"arch gate: gated arch {args.arch!r} not in both artifacts; "
              "skipping the push-over-push gate")
        return 1 if failed else 0
    if regressed:
        print(f"arch gate: {args.arch} throughput regressed below "
              f"{args.min_ratio:.2f}x of the previous push; if no engine "
              "code changed, suspect the runner host (cycle counts are the "
              "deterministic gate)", file=sys.stderr)
    else:
        print(f"arch gate: {args.arch} within {args.min_ratio:.2f}x of the "
              "previous push; OK")
    return 1 if (failed or regressed) else 0


if __name__ == "__main__":
    sys.exit(main())
