#!/usr/bin/env python3
"""Appends one run's smoke artifact to the BENCH_trajectory.json series.

Usage:
    trajectory.py TRAJECTORY.json ARTIFACT.json --sha SHA --run-id ID

The trajectory is the perf-over-time record the CI ``bench-artifact``
job carries forward from push to push (restored from the previous run,
appended to, re-uploaded): one entry per push, each holding the
deterministic per-job cycles/energy of the smoke suite keyed by stable
``job_hash``/``config_hash``, so any two points in history are
comparable job-by-job. Creates the trajectory on first use.
"""

import argparse
import json
import os
import sys

TRAJECTORY_SCHEMA_VERSION = 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trajectory")
    ap.add_argument("artifact")
    ap.add_argument("--sha", required=True)
    ap.add_argument("--run-id", required=True)
    args = ap.parse_args()

    with open(args.artifact, encoding="utf-8") as f:
        artifact = json.load(f)

    try:
        with open(args.trajectory, encoding="utf-8") as f:
            trajectory = json.load(f)
        if trajectory.get("schema_version") != TRAJECTORY_SCHEMA_VERSION:
            print(f"trajectory: schema {trajectory.get('schema_version')} != "
                  f"{TRAJECTORY_SCHEMA_VERSION}; starting fresh", file=sys.stderr)
            raise OSError("schema mismatch")
    except (OSError, json.JSONDecodeError):
        trajectory = {
            "schema_version": TRAJECTORY_SCHEMA_VERSION,
            "generator": "dmt-runner-ci",
            "kind": "bench_trajectory",
            "entries": [],
        }

    entry = {
        "sha": args.sha,
        "run_id": args.run_id,
        "suite": artifact.get("suite"),
        "jobs": [
            {
                "bench": j["bench"],
                "arch": j["arch"],
                "config_hash": j["config_hash"],
                "job_hash": j["job_hash"],
                "status": j["status"],
                **({"cycles": j["cycles"], "total_j": j["total_j"]}
                   if j.get("status") == "ok" else {}),
            }
            for j in artifact.get("jobs", [])
        ],
    }
    # Re-running the same commit (e.g. a workflow re-run) replaces its
    # entry instead of duplicating the series.
    trajectory["entries"] = [
        e for e in trajectory["entries"] if e.get("sha") != args.sha
    ]
    trajectory["entries"].append(entry)

    parent = os.path.dirname(args.trajectory)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.trajectory, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print(f"trajectory: {len(trajectory['entries'])} entries "
          f"(appended {args.sha[:12]}, {len(entry['jobs'])} jobs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
