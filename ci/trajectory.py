#!/usr/bin/env python3
"""Appends one run's smoke artifact to the BENCH_trajectory.json series.

Usage:
    trajectory.py TRAJECTORY.json ARTIFACT.json --sha SHA --run-id ID \
        [--hotpath BENCH_hotpath.json]

The trajectory is the perf-over-time record the CI ``bench-artifact``
job carries forward from push to push (restored from the previous run,
appended to, re-uploaded): one entry per push, each holding the
deterministic per-job cycles/energy of the smoke suite keyed by stable
``job_hash``/``config_hash``, so any two points in history are
comparable job-by-job. Creates the trajectory on first use.

With ``--hotpath``, the entry additionally records the simulator
wall-clock measurement from ``bench_hotpath`` (sim-cycles/sec and the
speedup over the vendored pre-overhaul baseline, plus — from schema-v2
hotpath artifacts — per-architecture sim-cycles/sec and the MT-CGRA/SM
throughput ratio, the history ``ci/arch_gate.py`` gates against from
this push forward; schema-v3 artifacts add the active fire/delivery
modes and the fire-loop share per fabric arch under ``modes``; both
schemas are accepted and older rows simply lack the newer keys). This
is informational — wall time depends on the runner host — and never
gates the trajectory append itself; ``bench_regress.py`` gates on
deterministic cycles only.
"""

import argparse
import json
import os
import sys

TRAJECTORY_SCHEMA_VERSION = 1

# Artifact schema versions this reader understands. v2 added the per-job
# "phases" array (every v1 field unchanged); the trajectory records the
# totals either way, plus the per-phase cycle breakdown when present, so
# a series may hold v1 and v2 rows side by side.
SUPPORTED_ARTIFACT_SCHEMAS = (1, 2)


def phase_fields(job):
    """The per-phase keys of one v2 job record (empty for v1 rows).

    Records the phase count and the per-phase cycle vector — the data
    the summary's per-phase table rows render. Kept as plain lists so
    any two pushes in history compare phase-by-phase.
    """
    phases = job.get("phases")
    if not isinstance(phases, list):
        return {}
    fields = {"phases": len(phases)}
    cycles = [p.get("cycles") for p in phases]
    if all(isinstance(c, int) for c in cycles):
        fields["phase_cycles"] = cycles
    return fields


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trajectory")
    ap.add_argument("artifact")
    ap.add_argument("--sha", required=True)
    ap.add_argument("--run-id", required=True)
    ap.add_argument("--hotpath", help="BENCH_hotpath.json to record wall-clock perf from")
    args = ap.parse_args()

    with open(args.artifact, encoding="utf-8") as f:
        artifact = json.load(f)
    schema = artifact.get("schema_version")
    if schema not in SUPPORTED_ARTIFACT_SCHEMAS:
        print(f"trajectory: unsupported artifact schema_version {schema!r} "
              f"(supported: {SUPPORTED_ARTIFACT_SCHEMAS})", file=sys.stderr)
        return 1

    hotpath = None
    if args.hotpath:
        try:
            with open(args.hotpath, encoding="utf-8") as f:
                doc = json.load(f)
            total = doc.get("total", {})
            hotpath = {
                "wall_us": total.get("wall_us"),
                "sim_cycles_per_sec": total.get("sim_cycles_per_sec"),
                "speedup_vs_baseline": total.get("speedup_vs_baseline"),
            }
            # Schema-v2 hotpath artifacts: per-arch throughput history
            # (v1 rows in the same series simply lack the keys).
            archs = doc.get("archs")
            if isinstance(archs, dict):
                hotpath["archs"] = {
                    name: rec.get("sim_cycles_per_sec")
                    for name, rec in archs.items()
                    if isinstance(rec, dict)
                }
                # Schema-v3: active fire/delivery modes and the fire-loop
                # share estimate per fabric arch (v2 rows lack the keys).
                modes = {
                    name: {
                        k: rec[k]
                        for k in ("fire_mode", "delivery_mode", "fire_event_share")
                        if k in rec
                    }
                    for name, rec in archs.items()
                    if isinstance(rec, dict)
                }
                modes = {n: m for n, m in modes.items() if m}
                if modes:
                    hotpath["modes"] = modes
            if isinstance(doc.get("mt_vs_sm_slowdown"), (int, float)):
                hotpath["mt_vs_sm_slowdown"] = doc["mt_vs_sm_slowdown"]
        except (OSError, json.JSONDecodeError) as e:
            # Informational only: a missing/corrupt hotpath record must not
            # fail the trajectory append.
            print(f"trajectory: ignoring hotpath record: {e}", file=sys.stderr)

    try:
        with open(args.trajectory, encoding="utf-8") as f:
            trajectory = json.load(f)
        if trajectory.get("schema_version") != TRAJECTORY_SCHEMA_VERSION:
            print(f"trajectory: schema {trajectory.get('schema_version')} != "
                  f"{TRAJECTORY_SCHEMA_VERSION}; starting fresh", file=sys.stderr)
            raise OSError("schema mismatch")
    except (OSError, json.JSONDecodeError):
        trajectory = {
            "schema_version": TRAJECTORY_SCHEMA_VERSION,
            "generator": "dmt-runner-ci",
            "kind": "bench_trajectory",
            "entries": [],
        }

    entry = {
        "sha": args.sha,
        "run_id": args.run_id,
        "suite": artifact.get("suite"),
        "artifact_schema": schema,
        "jobs": [
            {
                "bench": j["bench"],
                "arch": j["arch"],
                "config_hash": j["config_hash"],
                "job_hash": j["job_hash"],
                "status": j["status"],
                **({"cycles": j["cycles"], "total_j": j["total_j"]}
                   if j.get("status") == "ok" else {}),
                # v2 artifacts: record the phase count and per-phase
                # cycles (informational; v1 rows in the same series
                # simply lack the keys).
                **phase_fields(j),
            }
            for j in artifact.get("jobs", [])
        ],
    }
    if hotpath is not None:
        entry["hotpath"] = hotpath
    # Re-running the same commit (e.g. a workflow re-run) replaces its
    # entry instead of duplicating the series.
    trajectory["entries"] = [
        e for e in trajectory["entries"] if e.get("sha") != args.sha
    ]
    trajectory["entries"].append(entry)

    parent = os.path.dirname(args.trajectory)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.trajectory, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print(f"trajectory: {len(trajectory['entries'])} entries "
          f"(appended {args.sha[:12]}, {len(entry['jobs'])} jobs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
