#!/usr/bin/env python3
"""Gates simulator wall-clock against the vendored hotpath baseline.

Usage:
    overhead_gate.py BENCH_hotpath.json [--min-speedup X]

The observability layer (``dmt-obs``) promises zero overhead when
disabled: every recording call is gated on one inlined boolean, so a
default (untraced, unprofiled) run must be as fast as it was before the
instrumentation existed. Deterministic cycle counts are already gated
exactly (``bench_regress.py``, golden fixtures); this script backstops
the *wall-clock* half of the promise.

``bench_hotpath`` records ``total.speedup_vs_baseline`` — the serial
smoke suite's wall time relative to the vendored pre-overhaul engine
measurement (``crates/bench/baselines/hotpath_serial.json``). The gate
fails when that speedup falls below ``--min-speedup`` (default 0.95,
i.e. a >5% regression against the vendored baseline). The overhauled
engine is severalfold faster than that baseline on any host, so the
bound absorbs CI-runner variance while still catching the failure mode
it exists for: instrumentation leaking into the hot path and eating the
overhaul's headroom.

A missing or unreadable hotpath artifact fails the gate — the CI step
ordering guarantees the measurement exists.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("hotpath", help="BENCH_hotpath.json from bench_hotpath")
    ap.add_argument(
        "--min-speedup", type=float, default=0.95,
        help="fail below this speedup vs the vendored baseline (default 0.95)",
    )
    args = ap.parse_args()

    try:
        with open(args.hotpath, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"overhead gate: cannot read {args.hotpath}: {e}", file=sys.stderr)
        return 1

    total = doc.get("total", {})
    speedup = total.get("speedup_vs_baseline")
    wall_us = total.get("wall_us")
    if not isinstance(speedup, (int, float)):
        print(f"overhead gate: {args.hotpath} has no total.speedup_vs_baseline",
              file=sys.stderr)
        return 1

    verdict = "ok" if speedup >= args.min_speedup else "FAIL"
    print(f"overhead gate: smoke suite {wall_us} us, "
          f"{speedup:.2f}x vs vendored pre-overhaul baseline "
          f"(floor {args.min_speedup:.2f}x) — {verdict}")
    if speedup < args.min_speedup:
        print("overhead gate: wall-clock regressed past the baseline floor; "
              "if no instrumentation changed, suspect the runner host — "
              "cycle counts (bench_regress.py) are the deterministic gate",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
